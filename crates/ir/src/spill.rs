//! Spilling passes.
//!
//! The two-phase register allocators the paper discusses (Appel–George,
//! Hack et al.) first spill enough variables to bring `Maxlive` down to the
//! number of registers `k`, and only then color/coalesce.  This module
//! provides the simple *spill-everywhere* strategy used by the evaluation
//! harness: a spilled variable lives in memory and is reloaded into a fresh
//! short-lived temporary right before every use, so its contribution to the
//! register pressure shrinks to single program points.
//!
//! The spill-candidate choice is Chaitin-style and loop-aware: among the
//! variables live at an over-pressured point, it picks the one with the
//! lowest *spill cost per freed program point*, where the cost of spilling
//! a variable is the `10^loop_depth`-weighted count of the stores and
//! reloads the rewrite would insert (the same dynamic-execution-count
//! estimate that weights affinities and move costs).  A value that idles
//! across a hot loop is spilled long before one that is rewritten inside
//! it.
//!
//! The pass is **incremental end to end**, which is what lets E15-scale
//! programs (thousands of blocks) spill hundreds of victims in well under
//! a second where the seed recomputed everything per victim:
//!
//! * liveness is solved once and then patched in place after each rewrite
//!   ([`Liveness::apply_spill_rewrite`]) — a spilled variable is live at no
//!   block boundary afterwards, and the only reload temporaries that cross
//!   a boundary are the φ-argument ones;
//! * the per-block candidate statistics (precise per-block `Maxlive`,
//!   per-variable live-point counts, over-pressure membership) are cached
//!   in [`BlockSpillStats`] and recomputed only for the blocks a rewrite
//!   actually touched or the victim was live through;
//! * spill costs never change for a variable that was not itself rewritten,
//!   so they are computed once up front.

use crate::function::{BlockId, Function, Instr, InstrView, Terminator, Var};
use crate::liveness::Liveness;
use std::collections::BTreeSet;

/// Result of a spilling pass.
#[derive(Debug, Clone, Default)]
pub struct SpillResult {
    /// Variables that were spilled (original, pre-rewrite names).
    pub spilled: Vec<Var>,
    /// Number of reload temporaries introduced.
    pub reloads: usize,
}

/// What one [`spill_everywhere`] rewrite did to the function, in the terms
/// the incremental bookkeeping needs.
#[derive(Debug, Clone, Default)]
pub struct SpillRewrite {
    /// φ-argument reloads as `(predecessor, reload)` pairs — the only
    /// reload temporaries whose live range crosses a block boundary,
    /// which is exactly what [`Liveness::apply_spill_rewrite`] consumes.
    pub phi_pred_reloads: Vec<(BlockId, Var)>,
    /// Blocks whose instruction list or terminator changed (may contain
    /// duplicates).
    pub modified_blocks: Vec<BlockId>,
}

/// Per-block spill-candidate statistics, derived from one backward walk of
/// the block's live points:
///
/// * `contributions[(v, c)]` — variable `v` is live at `c` program points
///   of this block (the pressure-reduction benefit of spilling it);
/// * `candidates` — variables live at at least one point of this block
///   whose pressure exceeds the target `k`;
/// * `maxlive` — the precise per-block `Maxlive` (dead definitions and
///   simultaneously live φ results included).
///
/// The walk tracks liveness *segments* instead of materialising per-point
/// sets: a variable's live points inside a block are contiguous runs
/// delimited by its definition and last use, so one insert/remove event
/// pair yields the whole count, and over-pressure membership reduces to
/// comparing the segment against the latest over-pressured point index.
#[derive(Debug, Clone, Default)]
struct BlockSpillStats {
    contributions: Vec<(Var, u64)>,
    candidates: Vec<Var>,
    maxlive: usize,
}

/// Computes the [`BlockSpillStats`] of one block against the current
/// liveness solution.  `birth` is a scratch array of at least `num_vars`
/// entries (contents irrelevant between calls).
fn block_spill_stats(
    f: &Function,
    liveness: &Liveness,
    b: BlockId,
    k: usize,
    birth: &mut Vec<u32>,
) -> BlockSpillStats {
    let n = f.num_instrs(b);
    if birth.len() < f.num_vars() {
        birth.resize(f.num_vars(), 0);
    }
    let mut stats = BlockSpillStats::default();
    // The walk starts at point n: live-out plus the terminator's uses.
    let mut live = liveness.live_out(b).clone();
    for u in f.terminator(b).uses() {
        live.insert(u);
    }
    for v in live.iter() {
        birth[v.index()] = n as u32;
    }
    stats.maxlive = live.len();
    // Index of the lowest (most recently seen, walking backwards)
    // over-pressured point; `u32::MAX` while none was seen.
    let mut min_over = if live.len() > k { n as u32 } else { u32::MAX };
    for (i, instr) in f.block_instrs(b).enumerate().rev() {
        if let Some(d) = instr.def() {
            // Pressure of the definition point: the set after the
            // instruction plus the defined value if it is dead there (a
            // dead definition still occupies a register — this keeps
            // Maxlive equal to ω of the SSA interference graph, Thm 1).
            if !instr.is_phi() {
                stats.maxlive = stats
                    .maxlive
                    .max(live.len() + usize::from(!live.contains(d)));
            }
            if live.remove(d) {
                // Close the segment: d was live at points i+1 ..= birth.
                let first = birth[d.index()];
                stats.contributions.push((d, u64::from(first) - i as u64));
                if min_over <= first {
                    stats.candidates.push(d);
                }
            }
        }
        for &u in instr.local_uses() {
            if live.insert(u) {
                birth[u.index()] = i as u32;
            }
        }
        stats.maxlive = stats.maxlive.max(live.len());
        if live.len() > k {
            min_over = i as u32;
        }
    }
    // Flush the segments still open at the block entry (live-in).
    for v in live.iter() {
        let first = birth[v.index()];
        stats.contributions.push((v, u64::from(first) + 1));
        if min_over <= first {
            stats.candidates.push(v);
        }
    }
    // φ results are all simultaneously live at the block entry together
    // with the live-in set.
    let phi_defs = f.phis(b).filter_map(|p| p.def()).count();
    if phi_defs > 0 {
        stats.maxlive = stats.maxlive.max(liveness.live_in(b).len() + phi_defs);
    }
    stats
}

/// Spills variables of `f` until `Maxlive ≤ k` (or no candidate remains),
/// using a spill-everywhere rewrite.  Returns the list of spilled variables
/// and rewrites `f` in place.
///
/// Variables that are already "short-lived" (live at only one point, e.g.
/// reload temporaries) are never selected, which guarantees termination.
pub fn spill_to_pressure(f: &mut Function, k: usize) -> SpillResult {
    let mut result = SpillResult::default();
    let mut not_spillable: BTreeSet<Var> = BTreeSet::new();
    // One full fixpoint up front; every later iteration patches it in
    // place via `apply_spill_rewrite` (the patch is exact, see its docs).
    let mut liveness = Liveness::compute(f);
    // Spill costs only change for rewritten variables, and those are never
    // reconsidered (`not_spillable`), so one up-front computation serves
    // every iteration.
    let spill_cost = spill_costs(f);
    // Block of each variable's definition (first definition for non-SSA
    // inputs): the one block whose statistics a rewrite can change even
    // when the victim is live at none of its boundaries.
    let mut def_block: Vec<Option<BlockId>> = vec![None; f.num_vars()];
    for (b, _, instr) in f.instructions() {
        if let Some(d) = instr.def() {
            def_block[d.index()].get_or_insert(b);
        }
    }
    // Per-block candidate statistics plus the global aggregates derived
    // from them: per-variable point counts, and the candidate set with a
    // per-variable reference count (how many blocks currently list it).
    let mut birth: Vec<u32> = Vec::new();
    let mut occurrences: Vec<u64> = vec![0; f.num_vars()];
    let mut candidate_refs: Vec<u32> = vec![0; f.num_vars()];
    let mut candidates: BTreeSet<Var> = BTreeSet::new();
    let mut stats: Vec<BlockSpillStats> = Vec::with_capacity(f.num_blocks());
    for b in f.block_ids() {
        let s = block_spill_stats(f, &liveness, b, k, &mut birth);
        for &(v, c) in &s.contributions {
            occurrences[v.index()] += c;
        }
        for &v in &s.candidates {
            candidate_refs[v.index()] += 1;
            if candidate_refs[v.index()] == 1 {
                candidates.insert(v);
            }
        }
        stats.push(s);
    }

    loop {
        let maxlive = stats.iter().map(|s| s.maxlive).max().unwrap_or(0);
        if maxlive <= k {
            break;
        }
        // Pick the candidate minimizing cost/benefit (compared by cross
        // multiplication to stay in integers); ties fall to the higher
        // benefit, then to the lower variable index, so the choice is
        // deterministic.
        let candidate = candidates
            .iter()
            .copied()
            .filter(|v| !not_spillable.contains(v))
            .min_by(|&a, &b| {
                let (ca, cb) = (spill_cost[a.index()], spill_cost[b.index()]);
                let (oa, ob) = (occurrences[a.index()], occurrences[b.index()]);
                (u128::from(ca) * u128::from(ob))
                    .cmp(&(u128::from(cb) * u128::from(oa)))
                    .then(ob.cmp(&oa))
                    .then(a.cmp(&b))
            });
        let Some(victim) = candidate else { break };
        if occurrences[victim.index()] <= 2 {
            // Already as short-lived as a reload temp; spilling it cannot
            // reduce pressure.  Mark and retry with another candidate.
            not_spillable.insert(victim);
            continue;
        }
        // Blocks whose statistics the rewrite can change: the ones the
        // victim was live through, its definition block, and every block
        // the rewrite touches (collected below).
        let mut affected = vec![false; f.num_blocks()];
        for b in f.block_ids() {
            if liveness.is_live_in(b, victim) || liveness.is_live_out(b, victim) {
                affected[b.index()] = true;
            }
        }
        if let Some(b) = def_block[victim.index()] {
            affected[b.index()] = true;
        }
        let vars_before = f.num_vars();
        let rewrite = spill_everywhere(f, victim, &mut result);
        liveness.apply_spill_rewrite(victim, &rewrite.phi_pred_reloads);
        for &b in &rewrite.modified_blocks {
            affected[b.index()] = true;
        }
        occurrences.resize(f.num_vars(), 0);
        candidate_refs.resize(f.num_vars(), 0);
        // Retract the affected blocks' old statistics and fold in the
        // recomputed ones; everything else is untouched by construction.
        for (bi, touched) in affected.iter().enumerate() {
            if !touched {
                continue;
            }
            let b = BlockId::new(bi);
            let old = std::mem::take(&mut stats[bi]);
            for (v, c) in old.contributions {
                occurrences[v.index()] -= c;
            }
            for v in old.candidates {
                candidate_refs[v.index()] -= 1;
                if candidate_refs[v.index()] == 0 {
                    candidates.remove(&v);
                }
            }
            let s = block_spill_stats(f, &liveness, b, k, &mut birth);
            for &(v, c) in &s.contributions {
                occurrences[v.index()] += c;
            }
            for &v in &s.candidates {
                candidate_refs[v.index()] += 1;
                if candidate_refs[v.index()] == 1 {
                    candidates.insert(v);
                }
            }
            stats[bi] = s;
        }
        // Never re-spill a reload temporary (or the victim itself): reload
        // temps of early spills can grow long again as later reloads are
        // inserted between them and their use, and re-spilling them would
        // loop forever without lowering the pressure.
        not_spillable.insert(victim);
        not_spillable.extend((vars_before..f.num_vars()).map(Var::new));
        result.spilled.push(victim);
    }
    result
}

/// Estimated dynamic cost of spilling each variable, indexed by variable:
/// one store at the definition plus one reload per use, each weighted by
/// `10^loop_depth` of the block the access happens in (φ arguments are
/// reloaded at the end of the corresponding predecessor, so they count at
/// the predecessor's depth).
pub fn spill_costs(f: &Function) -> Vec<u64> {
    let mut cost = vec![0u64; f.num_vars()];
    for b in f.block_ids() {
        let weight = 10u64.saturating_pow(f.loop_depth(b));
        for instr in f.block_instrs(b) {
            if let Some(d) = instr.def() {
                cost[d.index()] = cost[d.index()].saturating_add(weight);
            }
            match instr {
                InstrView::Phi { args, .. } => {
                    for a in args {
                        let w = 10u64.saturating_pow(f.loop_depth(a.pred));
                        cost[a.value.index()] = cost[a.value.index()].saturating_add(w);
                    }
                }
                _ => {
                    for &u in instr.local_uses() {
                        cost[u.index()] = cost[u.index()].saturating_add(weight);
                    }
                }
            }
        }
        for u in f.terminator(b).uses() {
            cost[u.index()] = cost[u.index()].saturating_add(weight);
        }
    }
    cost
}

/// Rewrites `f` so that `victim` is reloaded into a fresh temporary before
/// every use (spill-everywhere).  The original definition of `victim` is
/// kept (it represents the value being stored to memory) but the variable
/// itself dies immediately after its definition.
///
/// Returns the [`SpillRewrite`] describing what changed: the φ-argument
/// reloads (the only reload temporaries whose live range crosses a block
/// boundary — what [`Liveness::apply_spill_rewrite`] consumes) and the
/// blocks whose code was touched (what the incremental candidate
/// bookkeeping of [`spill_to_pressure`] consumes).
pub fn spill_everywhere(f: &mut Function, victim: Var, result: &mut SpillResult) -> SpillRewrite {
    let mut rewrite = SpillRewrite::default();
    let block_ids: Vec<BlockId> = f.block_ids().collect();
    for b in block_ids {
        // Rewrite φ arguments: reload at the end of the predecessor.
        let mut pending_pred_reloads: Vec<(BlockId, Var)> = Vec::new();
        {
            let nb = f.num_instrs(b);
            for i in 0..nb {
                // Copy out the argument list only when this φ mentions the
                // victim; the view borrow ends before the rewrite below.
                let rewrite_phi = match f.instr(b, i) {
                    InstrView::Phi { dst, args } if args.iter().any(|a| a.value == victim) => {
                        Some((
                            dst,
                            args.iter().map(|a| (a.pred, a.value)).collect::<Vec<_>>(),
                        ))
                    }
                    _ => None,
                };
                if let Some((dst, mut args)) = rewrite_phi {
                    for (p, v) in args.iter_mut() {
                        if *v == victim {
                            let reload = f.derive_var(victim, "_reload");
                            pending_pred_reloads.push((*p, reload));
                            *v = reload;
                        }
                    }
                    f.replace_instr(b, i, Instr::Phi { dst, args });
                    rewrite.modified_blocks.push(b);
                }
            }
        }
        for (pred, reload) in pending_pred_reloads {
            f.emit_op(pred, Some(reload), &[]);
            result.reloads += 1;
            rewrite.modified_blocks.push(pred);
            rewrite.phi_pred_reloads.push((pred, reload));
        }

        // Rewrite ordinary uses inside the block.
        let mut i = 0;
        while i < f.num_instrs(b) {
            let uses_victim = match f.instr(b, i) {
                InstrView::Op { uses, .. } => uses.contains(&victim),
                InstrView::Copy { src, .. } => src == victim,
                InstrView::Phi { .. } => false,
            };
            if uses_victim {
                rewrite.modified_blocks.push(b);
                let reload = f.derive_var(victim, "_reload");
                let new_instr = match f.instr(b, i).to_instr() {
                    Instr::Op { dst, uses } => Instr::Op {
                        dst,
                        uses: uses
                            .into_iter()
                            .map(|u| if u == victim { reload } else { u })
                            .collect(),
                    },
                    Instr::Copy { dst, .. } => Instr::Copy { dst, src: reload },
                    phi @ Instr::Phi { .. } => phi,
                };
                f.replace_instr(b, i, new_instr);
                f.insert_instr(
                    b,
                    i,
                    Instr::Op {
                        dst: Some(reload),
                        uses: Vec::new(),
                    },
                );
                result.reloads += 1;
                i += 2;
            } else {
                i += 1;
            }
        }

        // Rewrite terminator uses.
        let term_uses_victim = f.terminator(b).uses().contains(&victim);
        if term_uses_victim {
            rewrite.modified_blocks.push(b);
            let reload = f.derive_var(victim, "_reload");
            let new_term = match f.terminator(b).clone() {
                Terminator::Branch {
                    cond,
                    then_block,
                    else_block,
                } => Terminator::Branch {
                    cond: if cond == victim { reload } else { cond },
                    then_block,
                    else_block,
                },
                Terminator::Return { uses } => Terminator::Return {
                    uses: uses
                        .into_iter()
                        .map(|u| if u == victim { reload } else { u })
                        .collect(),
                },
                t @ Terminator::Jump(_) => t,
            };
            *f.terminator_mut(b) = new_term;
            f.emit_op(b, Some(reload), &[]);
            result.reloads += 1;
        }
    }
    debug_assert!(f.validate().is_ok());
    rewrite
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;

    /// A straight-line block with `n` values all live at the same point.
    fn high_pressure(n: usize) -> Function {
        let mut b = FunctionBuilder::new("pressure");
        let entry = b.entry_block();
        let vars: Vec<Var> = (0..n).map(|i| b.def(entry, format!("v{i}"))).collect();
        let _sum = b.op(entry, "sum", &vars);
        b.ret(entry, &[]);
        b.finish()
    }

    #[test]
    fn no_spill_needed_below_threshold() {
        let mut f = high_pressure(3);
        let live = Liveness::compute(&f);
        assert_eq!(live.maxlive_precise(&f), 3);
        let result = spill_to_pressure(&mut f, 4);
        assert!(result.spilled.is_empty());
    }

    #[test]
    fn spilling_reduces_maxlive() {
        let mut f = high_pressure(6);
        let before = Liveness::compute(&f).maxlive_precise(&f);
        assert_eq!(before, 6);
        let result = spill_to_pressure(&mut f, 6);
        assert!(result.spilled.is_empty());
        // Note: with all six operands feeding a single instruction, every
        // reload is live at the use, so pressure at that point cannot drop
        // below 6; ask for 6 and we are already there.
        assert!(Liveness::compute(&f).maxlive_precise(&f) <= 6);
    }

    #[test]
    fn spilling_long_live_range_helps() {
        // x is live across a long chain; spilling it removes the overlap.
        let mut b = FunctionBuilder::new("long");
        let entry = b.entry_block();
        let x = b.def(entry, "x");
        let mut prev = b.def(entry, "a0");
        for i in 1..5usize {
            prev = b.op(entry, format!("a{i}"), &[prev]);
        }
        let last = b.op(entry, "use_x", &[x, prev]);
        b.ret(entry, &[last]);
        let mut f = b.finish();
        let before = Liveness::compute(&f).maxlive_precise(&f);
        assert_eq!(before, 2);
        let result = spill_to_pressure(&mut f, 1);
        // x (or the chain variable) gets spilled; pressure can only go so
        // low because the final op uses two operands at once.
        assert!(!result.spilled.is_empty() || before <= 1);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn spill_everywhere_rewrites_uses() {
        let mut b = FunctionBuilder::new("f");
        let entry = b.entry_block();
        let x = b.def(entry, "x");
        let y = b.op(entry, "y", &[x]);
        let z = b.op(entry, "z", &[x, y]);
        b.ret(entry, &[z, x]);
        let mut f = b.finish();
        let mut result = SpillResult::default();
        spill_everywhere(&mut f, x, &mut result);
        assert_eq!(result.reloads, 3);
        // x itself no longer appears as a use anywhere.
        for (_, _, instr) in f.instructions() {
            assert!(!instr.local_uses().contains(&x));
        }
        for bid in f.block_ids() {
            assert!(!f.terminator(bid).uses().contains(&x));
        }
    }

    #[test]
    fn spill_costs_weight_uses_by_loop_depth() {
        // x is used inside a depth-2 loop body, y only outside it.
        let mut b = FunctionBuilder::new("cost");
        let entry = b.entry_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.set_loop_depth(body, 2);
        let x = b.def(entry, "x");
        let y = b.def(entry, "y");
        let c = b.def(entry, "c");
        b.jump(entry, body);
        b.effect(body, &[x]);
        b.branch(body, c, body, exit);
        b.ret(exit, &[y]);
        let f = b.finish();
        let costs = spill_costs(&f);
        assert_eq!(costs[x.index()], 1 + 100); // store + loop-body use
        assert_eq!(costs[y.index()], 1 + 1); // store + use at exit
        assert_eq!(costs[c.index()], 1 + 100); // store + loop-body branch
    }

    #[test]
    fn loop_aware_choice_spills_the_value_idle_across_the_loop() {
        // Both `hot` and `idle` are live through a loop body that is over
        // pressure, but only `hot` is used inside it; the loop-aware cost
        // must pick `idle` even though both free the same pressure points.
        let mut b = FunctionBuilder::new("loop_spill");
        let entry = b.entry_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.set_loop_depth(body, 1);
        let idle = b.def(entry, "idle");
        let hot = b.def(entry, "hot");
        let c = b.def(entry, "c");
        b.jump(entry, body);
        let t = b.op(body, "t", &[hot]);
        b.effect(body, &[t, hot]);
        b.branch(body, c, body, exit);
        b.effect(exit, &[idle, hot]);
        b.ret(exit, &[]);
        let mut f = b.finish();
        let result = spill_to_pressure(&mut f, 3);
        assert!(
            result.spilled.contains(&idle),
            "expected `idle` to be spilled, got {:?}",
            result.spilled
        );
        assert!(!result.spilled.contains(&hot));
        assert!(f.validate().is_ok());
    }

    #[test]
    fn spill_terminates_when_target_unreachable() {
        // Asking for pressure 0 can never fully succeed; the pass must not
        // loop forever.
        let mut f = high_pressure(3);
        let _ = spill_to_pressure(&mut f, 0);
        assert!(f.validate().is_ok());
    }
}
