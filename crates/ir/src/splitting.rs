//! Live-range splitting by copy insertion.
//!
//! Splitting — "adding register-to-register moves" (§1) — is the inverse
//! lever of coalescing: it cuts long live ranges into smaller pieces so
//! that the allocator can place different pieces in different registers (or
//! spill only some of them), at the price of move instructions that the
//! coalescer may later remove again.  The paper repeatedly stresses that
//! the *interplay* between splitting and coalescing is hard to control;
//! the end-to-end experiments (E8 and the splitting ablation) need an
//! actual splitting pass to exhibit that interplay.
//!
//! The transformation implemented here is **block-boundary splitting**: for
//! every block `B` and every variable `x` that is live on entry to `B` and
//! used inside `B`, a fresh name `x'` is introduced, a copy `x' ← x` is
//! inserted at the top of `B` (after any φ-functions), and the uses of `x`
//! inside `B` that occur before `x` is redefined are renamed to `x'`.  The
//! original `x` keeps carrying the value across `B` for later blocks, so
//! the transformation is semantics-preserving on arbitrary (SSA or
//! non-SSA) strict code; every inserted copy is a new affinity for the
//! coalescer.
//!
//! When `x` is *not* live out of `B` (and not used by a later redefinition
//! point), its live range now ends at the inserted copy, which is the
//! pressure-reducing effect splitting is used for in practice.

use crate::function::{Function, Instr, Var};
use crate::liveness::Liveness;

/// Statistics returned by the splitting passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SplitStats {
    /// Number of copy instructions inserted.
    pub copies_inserted: usize,
    /// Number of fresh variables introduced.
    pub new_variables: usize,
    /// Number of (block, variable) pairs that were split.
    pub split_points: usize,
}

/// Splits every variable at every block boundary where it is live-in and
/// locally used.  Returns statistics about the inserted copies.
///
/// The function is left valid (it still passes [`Function::validate`]); the
/// caller typically recomputes [`Liveness`] and rebuilds the interference
/// graph afterwards.
pub fn split_at_block_boundaries(f: &mut Function) -> SplitStats {
    let vars: Vec<Var> = (0..f.num_vars()).map(Var::new).collect();
    split_variables_at_block_boundaries(f, &vars)
}

/// Splits only the given variables at block boundaries.  Variables not
/// live-in or not used in a block are left untouched in that block.
pub fn split_variables_at_block_boundaries(f: &mut Function, vars: &[Var]) -> SplitStats {
    let liveness = Liveness::compute(f);
    let mut stats = SplitStats::default();
    let blocks: Vec<_> = f.block_ids().collect();
    for b in blocks {
        for &x in vars {
            if !liveness.is_live_in(b, x) {
                continue;
            }
            // Find the uses of x in the block body (and terminator) that
            // happen before x is redefined; skip φ-functions entirely
            // (their arguments are uses on the incoming edges).
            let mut redefined_at: Option<usize> = None;
            let mut has_use = false;
            for (i, instr) in f.block_instrs(b).enumerate() {
                if instr.is_phi() {
                    // A φ defining x counts as a redefinition at the top.
                    if instr.def() == Some(x) {
                        redefined_at = Some(i);
                        break;
                    }
                    continue;
                }
                if instr.local_uses().contains(&x) {
                    has_use = true;
                }
                if instr.def() == Some(x) {
                    redefined_at = Some(i);
                    break;
                }
            }
            let terminator_uses = redefined_at.is_none() && f.terminator(b).uses().contains(&x);
            if !has_use && !terminator_uses {
                continue;
            }
            if redefined_at.is_some() && !has_use {
                continue;
            }

            // Insert the copy and rename.
            let fresh = f.derive_var(x, &format!(".split.{}", b.index()));
            let phi_end = f.num_phis_in(b);
            // Rename uses before the redefinition point (indices shift by one
            // after the insertion, so rename first, then insert).
            let limit = redefined_at.unwrap_or(f.num_instrs(b));
            for i in phi_end..limit.max(phi_end) {
                let mut instr = f.instr(b, i).to_instr();
                if rename_uses(&mut instr, x, fresh) {
                    f.replace_instr(b, i, instr);
                }
            }
            if redefined_at.is_none() {
                rename_terminator_uses(f.terminator_mut(b), x, fresh);
            }
            f.insert_instr(b, phi_end, Instr::Copy { dst: fresh, src: x });
            stats.copies_inserted += 1;
            stats.new_variables += 1;
            stats.split_points += 1;
        }
    }
    debug_assert!(
        f.validate().is_ok(),
        "splitting produced an invalid function"
    );
    stats
}

fn rename_uses(instr: &mut Instr, from: Var, to: Var) -> bool {
    let mut changed = false;
    match instr {
        Instr::Op { uses, .. } => {
            for u in uses.iter_mut() {
                if *u == from {
                    *u = to;
                    changed = true;
                }
            }
        }
        Instr::Copy { src, .. } => {
            if *src == from {
                *src = to;
                changed = true;
            }
        }
        Instr::Phi { .. } => {}
    }
    changed
}

fn rename_terminator_uses(term: &mut crate::function::Terminator, from: Var, to: Var) {
    match term {
        crate::function::Terminator::Jump(_) => {}
        crate::function::Terminator::Branch { cond, .. } => {
            if *cond == from {
                *cond = to;
            }
        }
        crate::function::Terminator::Return { uses } => {
            for u in uses.iter_mut() {
                if *u == from {
                    *u = to;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;
    use crate::interference::InterferenceGraph;

    /// entry defines x and c, branches to two blocks that both use x, which
    /// join and return a φ of their results.
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("diamond");
        let entry = b.entry_block();
        let (t, e, join) = (b.new_block(), b.new_block(), b.new_block());
        let x = b.def(entry, "x");
        let c = b.def(entry, "c");
        b.branch(entry, c, t, e);
        let y = b.op(t, "y", &[x]);
        b.jump(t, join);
        let z = b.op(e, "z", &[x]);
        b.jump(e, join);
        let w = b.phi(join, "w", &[(t, y), (e, z)]);
        b.ret(join, &[w]);
        b.finish()
    }

    #[test]
    fn splitting_inserts_one_copy_per_block_using_a_live_in() {
        let mut f = diamond();
        let before_copies = f.num_copies();
        let stats = split_at_block_boundaries(&mut f);
        // x is live into both branch blocks and used there; c is consumed by
        // the entry terminator only (not live into any block); y and z are
        // φ-arguments, used on the edges, not inside join's body.
        assert_eq!(stats.copies_inserted, 2);
        assert_eq!(stats.new_variables, 2);
        assert_eq!(f.num_copies(), before_copies + 2);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn splitting_preserves_liveness_derived_interference_soundness() {
        let mut f = diamond();
        split_at_block_boundaries(&mut f);
        let live = Liveness::compute(&f);
        let ig = InterferenceGraph::build(&f, &live);
        // The split copies appear as affinities.
        assert!(ig.affinity_edges().len() >= 2);
        // Every split variable interferes with nothing it does not overlap:
        // in particular the two per-branch split copies of x never coexist.
        let split_vars: Vec<Var> = (0..f.num_vars())
            .map(Var::new)
            .filter(|&v| f.var_name(v).is_some_and(|n| n.contains(".split.")))
            .collect();
        assert_eq!(split_vars.len(), 2);
        assert!(!ig.interferes(split_vars[0], split_vars[1]));
    }

    #[test]
    fn uses_after_a_redefinition_are_not_renamed() {
        let mut b = FunctionBuilder::new("redef");
        let entry = b.entry_block();
        let body = b.new_block();
        let x = b.def(entry, "x");
        b.jump(entry, body);
        // use x, then redefine x, then use the new x.
        let y = b.op(body, "y", &[x]);
        b.copy_to(body, x, y); // x = y, a redefinition of x
        let z = b.op(body, "z", &[x]);
        b.ret(body, &[z]);
        let mut f = b.finish();

        let stats = split_at_block_boundaries(&mut f);
        assert_eq!(stats.copies_inserted, 1);
        assert!(f.validate().is_ok());
        // The use of x in `y = op(x)` is renamed, the use in `z = op(x)`
        // (after the redefinition) is not.
        let body_block = crate::function::BlockId::new(1);
        let op_uses = |name: &str| -> Vec<Var> {
            f.block_instrs(body_block)
                .find_map(|i| match i {
                    crate::function::InstrView::Op { dst: Some(d), uses }
                        if f.var_name(d) == Some(name) =>
                    {
                        Some(uses.to_vec())
                    }
                    _ => None,
                })
                .unwrap()
        };
        let first_op_uses = op_uses("y");
        let last_op_uses = op_uses("z");
        assert_ne!(
            first_op_uses[0], x,
            "use before redefinition must be renamed"
        );
        assert_eq!(
            last_op_uses[0], x,
            "use after redefinition must keep the original"
        );
    }

    #[test]
    fn splitting_only_selected_variables_leaves_others_alone() {
        let mut f = diamond();
        let x = Var::new(0);
        let stats = split_variables_at_block_boundaries(&mut f, &[x]);
        assert_eq!(stats.copies_inserted, 2);
        let mut g = diamond();
        let none = split_variables_at_block_boundaries(&mut g, &[]);
        assert_eq!(none.copies_inserted, 0);
        assert_eq!(g.num_copies(), diamond().num_copies());
    }

    #[test]
    fn terminator_only_uses_are_split_too() {
        let mut b = FunctionBuilder::new("ret_use");
        let entry = b.entry_block();
        let next = b.new_block();
        let x = b.def(entry, "x");
        b.jump(entry, next);
        b.ret(next, &[x]);
        let mut f = b.finish();
        let stats = split_at_block_boundaries(&mut f);
        assert_eq!(stats.copies_inserted, 1);
        assert!(f.validate().is_ok());
        // The return now uses the split name, which is copy-defined from x.
        match f.terminator(crate::function::BlockId::new(1)) {
            crate::function::Terminator::Return { uses } => {
                assert_eq!(uses.len(), 1);
                assert_ne!(uses[0], x);
            }
            other => panic!("unexpected terminator {other:?}"),
        }
    }

    #[test]
    fn splitting_is_idempotent_on_functions_without_cross_block_uses() {
        let mut b = FunctionBuilder::new("local_only");
        let entry = b.entry_block();
        let x = b.def(entry, "x");
        let y = b.op(entry, "y", &[x]);
        b.ret(entry, &[y]);
        let mut f = b.finish();
        let stats = split_at_block_boundaries(&mut f);
        // Nothing is live across a block boundary, so nothing is split.
        assert_eq!(stats.copies_inserted, 0);
    }
}
