//! SSA construction and validation.
//!
//! [`construct_ssa`] rewrites a function with arbitrary (multiply-defined)
//! variables into strict SSA form using the classical Cytron et al.
//! algorithm: φ-functions are placed at the iterated dominance frontier of
//! every variable's definition blocks, then variables are renamed along the
//! dominator tree.  [`is_ssa`] and [`is_strict`] check the two defining
//! properties of strict SSA that Theorem 1 relies on: unique textual
//! definitions, and definitions dominating uses.

use crate::dom::DominatorTree;
use crate::function::{BlockId, Function, Instr, InstrView, Terminator, Var};
use std::collections::{BTreeMap, BTreeSet};

/// Returns `true` if every variable of `f` has at most one definition.
pub fn is_ssa(f: &Function) -> bool {
    let mut defined = vec![false; f.num_vars()];
    for (_, _, instr) in f.instructions() {
        if let Some(d) = instr.def() {
            if defined[d.index()] {
                return false;
            }
            defined[d.index()] = true;
        }
    }
    true
}

/// Returns `true` if `f` is in *strict* SSA form: single definitions and
/// every use dominated by the definition of the used variable.
///
/// φ-function arguments are considered used at the end of the corresponding
/// predecessor block.
pub fn is_strict(f: &Function) -> bool {
    if !is_ssa(f) {
        return false;
    }
    let dom = DominatorTree::compute(f);
    // Definition site (block) of every variable.
    let mut def_block: Vec<Option<BlockId>> = vec![None; f.num_vars()];
    let mut def_pos: Vec<usize> = vec![usize::MAX; f.num_vars()];
    for (b, i, instr) in f.instructions() {
        if let Some(d) = instr.def() {
            def_block[d.index()] = Some(b);
            def_pos[d.index()] = i;
        }
    }
    let use_dominated = |used: Var, block: BlockId, pos: usize| -> bool {
        match def_block[used.index()] {
            None => false, // used but never defined
            Some(db) => {
                if db == block {
                    def_pos[used.index()] < pos
                } else {
                    dom.dominates(db, block)
                }
            }
        }
    };
    for b in f.block_ids() {
        if !dom.is_reachable(b) {
            continue;
        }
        for (i, instr) in f.block_instrs(b).enumerate() {
            match instr {
                InstrView::Phi { args, .. } => {
                    for a in args {
                        // Used at the end of the predecessor.
                        if !use_dominated(a.value, a.pred, usize::MAX - 1) {
                            return false;
                        }
                    }
                }
                _ => {
                    for &v in instr.local_uses() {
                        if !use_dominated(v, b, i) {
                            return false;
                        }
                    }
                }
            }
        }
        for v in f.terminator(b).uses() {
            if !use_dominated(v, b, usize::MAX - 1) {
                return false;
            }
        }
    }
    true
}

/// Converts `f` into strict SSA form.
///
/// Variables that are already singly-defined and only used in their defining
/// block are left untouched; all others get φ-functions at their iterated
/// dominance frontier and fresh names per definition.
///
/// # Panics
///
/// Panics if a reachable use has no reaching definition on some path (the
/// input must be a *strict* program in the paper's sense).
pub fn construct_ssa(f: &Function) -> Function {
    let mut out = f.clone();
    let dom = DominatorTree::compute(&out);
    let preds = out.predecessors();

    // 1. Collect definition blocks per original variable.
    let num_orig = out.num_vars();
    let mut def_blocks: Vec<BTreeSet<BlockId>> = vec![BTreeSet::new(); num_orig];
    let mut def_count: Vec<usize> = vec![0; num_orig];
    for (b, _, instr) in out.instructions() {
        if let Some(d) = instr.def() {
            def_blocks[d.index()].insert(b);
            def_count[d.index()] += 1;
        }
    }
    // A variable needs renaming as soon as it has more than one textual
    // definition (even within a single block).
    let needs_rename: Vec<bool> = def_count.iter().map(|&c| c > 1).collect();

    // 2. Place φ-functions at iterated dominance frontiers.
    let frontiers = dom.dominance_frontiers(&out);
    // phi_placed[v] = blocks where a φ for original variable v was inserted.
    let mut phi_for: BTreeMap<(BlockId, usize), usize> = BTreeMap::new(); // (block, orig var) -> instr index
    for (v, blocks) in def_blocks.iter().enumerate() {
        if blocks.len() <= 1 {
            // A single static definition never needs a φ for correctness of
            // renaming (its definition dominates every use in a strict
            // program).
            continue;
        }
        let mut work: Vec<BlockId> = blocks.iter().copied().collect();
        let mut has_phi: BTreeSet<BlockId> = BTreeSet::new();
        while let Some(b) = work.pop() {
            for &y in &frontiers[b.index()] {
                if has_phi.insert(y) {
                    // Insert a φ defining the *original* variable v for now;
                    // renaming will replace both the def and the args.
                    let var = Var::new(v);
                    let args: Vec<(BlockId, Var)> =
                        preds[y.index()].iter().map(|&p| (p, var)).collect();
                    let pos = out.num_phis_in(y);
                    out.insert_instr(y, pos, Instr::Phi { dst: var, args });
                    phi_for.insert((y, v), pos);
                    if !blocks.contains(&y) {
                        work.push(y);
                    }
                }
            }
        }
    }

    // 3. Rename along the dominator tree.
    let mut stacks: Vec<Vec<Var>> = vec![Vec::new(); num_orig];
    let children = dom.children();
    let mut renamed = out.clone();

    // Recursive renaming over the dominator tree, iteratively with an
    // explicit stack of (block, phase) where phase 0 = enter, 1 = exit.
    #[derive(Clone, Copy)]
    enum Phase {
        Enter,
        Exit,
    }
    let mut stack = vec![(out.entry, Phase::Enter)];
    // Remember how many names each block pushed per variable, to pop on exit.
    let mut pushed: Vec<Vec<(usize, usize)>> = vec![Vec::new(); out.num_blocks()];

    let orig_of = |v: Var, num_orig: usize| -> Option<usize> {
        if v.index() < num_orig {
            Some(v.index())
        } else {
            None
        }
    };

    while let Some((b, phase)) = stack.pop() {
        match phase {
            Phase::Enter => {
                stack.push((b, Phase::Exit));
                let mut pushes: Vec<(usize, usize)> = Vec::new();
                // Rename definitions and uses inside the block.
                let nb = renamed.num_instrs(b);
                for i in 0..nb {
                    let instr = renamed.instr(b, i).to_instr();
                    let new_instr = match instr {
                        Instr::Phi { dst, args } => {
                            // Only the def is renamed here; args are renamed
                            // from the predecessors (below).
                            let o = orig_of(dst, num_orig);
                            let new_dst = match o {
                                Some(ov) if needs_rename[ov] => {
                                    let nv = match f.var_name(Var::new(ov)) {
                                        Some(n) => {
                                            let name = format!("{n}_{}", b.index());
                                            renamed.new_var(name)
                                        }
                                        None => renamed.new_var(""),
                                    };
                                    stacks[ov].push(nv);
                                    pushes.push((ov, 1));
                                    nv
                                }
                                _ => dst,
                            };
                            Instr::Phi { dst: new_dst, args }
                        }
                        Instr::Op { dst, uses } => {
                            let new_uses: Vec<Var> = uses
                                .iter()
                                .map(|&u| rename_use(u, &stacks, num_orig, &needs_rename))
                                .collect();
                            let new_dst = dst.map(|d| {
                                rename_def(
                                    d,
                                    &mut stacks,
                                    &mut pushes,
                                    &mut renamed,
                                    f,
                                    num_orig,
                                    &needs_rename,
                                    b,
                                )
                            });
                            Instr::Op {
                                dst: new_dst,
                                uses: new_uses,
                            }
                        }
                        Instr::Copy { dst, src } => {
                            let new_src = rename_use(src, &stacks, num_orig, &needs_rename);
                            let new_dst = rename_def(
                                dst,
                                &mut stacks,
                                &mut pushes,
                                &mut renamed,
                                f,
                                num_orig,
                                &needs_rename,
                                b,
                            );
                            Instr::Copy {
                                dst: new_dst,
                                src: new_src,
                            }
                        }
                    };
                    renamed.replace_instr(b, i, new_instr);
                }
                // Rename terminator uses.
                let term = renamed.terminator(b).clone();
                let new_term = match term {
                    Terminator::Branch {
                        cond,
                        then_block,
                        else_block,
                    } => Terminator::Branch {
                        cond: rename_use(cond, &stacks, num_orig, &needs_rename),
                        then_block,
                        else_block,
                    },
                    Terminator::Return { uses } => Terminator::Return {
                        uses: uses
                            .iter()
                            .map(|&u| rename_use(u, &stacks, num_orig, &needs_rename))
                            .collect(),
                    },
                    t @ Terminator::Jump(_) => t,
                };
                *renamed.terminator_mut(b) = new_term;

                // Fill in φ arguments of the successors coming from `b`.
                for s in renamed.successors(b) {
                    let ns = renamed.num_instrs(s);
                    for i in 0..ns {
                        let phi = match renamed.instr(s, i) {
                            InstrView::Phi { dst, args } => Some((
                                dst,
                                args.iter().map(|a| (a.pred, a.value)).collect::<Vec<_>>(),
                            )),
                            _ => None,
                        };
                        let Some((dst, args)) = phi else { break };
                        let new_args: Vec<(BlockId, Var)> = args
                            .iter()
                            .map(|&(p, v)| {
                                if p == b {
                                    (p, rename_use(v, &stacks, num_orig, &needs_rename))
                                } else {
                                    (p, v)
                                }
                            })
                            .collect();
                        renamed.replace_instr(
                            s,
                            i,
                            Instr::Phi {
                                dst,
                                args: new_args,
                            },
                        );
                    }
                }

                pushed[b.index()] = pushes;
                for &c in children[b.index()].iter().rev() {
                    stack.push((c, Phase::Enter));
                }
            }
            Phase::Exit => {
                for &(ov, n) in &pushed[b.index()] {
                    for _ in 0..n {
                        stacks[ov].pop();
                    }
                }
            }
        }
    }

    renamed
}

fn rename_use(v: Var, stacks: &[Vec<Var>], num_orig: usize, needs_rename: &[bool]) -> Var {
    if v.index() < num_orig && needs_rename[v.index()] {
        *stacks[v.index()].last().unwrap_or_else(|| {
            panic!("use of {v:?} with no reaching definition (non-strict program)")
        })
    } else {
        v
    }
}

#[allow(clippy::too_many_arguments)]
fn rename_def(
    d: Var,
    stacks: &mut [Vec<Var>],
    pushes: &mut Vec<(usize, usize)>,
    renamed: &mut Function,
    original: &Function,
    num_orig: usize,
    needs_rename: &[bool],
    b: BlockId,
) -> Var {
    if d.index() < num_orig && needs_rename[d.index()] {
        let nv = match original.var_name(d) {
            Some(n) => {
                let name = format!("{n}_{}", b.index());
                renamed.new_var(name)
            }
            None => renamed.new_var(""),
        };
        stacks[d.index()].push(nv);
        pushes.push((d.index(), 1));
        nv
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;

    /// A diamond where `x` is assigned in both branches and used after.
    fn non_ssa_diamond() -> Function {
        let mut b = FunctionBuilder::new("f");
        let entry = b.entry_block();
        let then_ = b.new_block();
        let else_ = b.new_block();
        let join = b.new_block();
        let c = b.def(entry, "c");
        let x = b.def(entry, "x"); // x = ...
        b.branch(entry, c, then_, else_);
        // then: x = op(x)
        b.function_mut().push_instr(
            then_,
            Instr::Op {
                dst: Some(x),
                uses: vec![x],
            },
        );
        b.jump(then_, join);
        // else: x = op()
        b.function_mut().push_instr(
            else_,
            Instr::Op {
                dst: Some(x),
                uses: vec![],
            },
        );
        b.jump(else_, join);
        b.ret(join, &[x]);
        b.finish()
    }

    #[test]
    fn detects_non_ssa() {
        let f = non_ssa_diamond();
        assert!(!is_ssa(&f));
        assert!(!is_strict(&f));
    }

    #[test]
    fn construction_produces_strict_ssa() {
        let f = non_ssa_diamond();
        let ssa = construct_ssa(&f);
        assert!(ssa.validate().is_ok(), "{}", ssa);
        assert!(is_ssa(&ssa), "{}", ssa);
        assert!(is_strict(&ssa), "{}", ssa);
        // A φ for x must have been inserted at the join block.
        assert_eq!(ssa.num_phis(), 1);
    }

    #[test]
    fn already_ssa_function_gets_no_phis() {
        let mut b = FunctionBuilder::new("straight");
        let entry = b.entry_block();
        let x = b.def(entry, "x");
        let y = b.op(entry, "y", &[x]);
        b.ret(entry, &[y]);
        let f = b.finish();
        assert!(is_ssa(&f));
        assert!(is_strict(&f));
        let ssa = construct_ssa(&f);
        assert_eq!(ssa.num_phis(), 0);
        assert_eq!(ssa.num_vars(), f.num_vars());
    }

    #[test]
    fn loop_variable_gets_phi_at_header() {
        // i = 0; while (c) { i = op(i); }  return i
        let mut b = FunctionBuilder::new("loop");
        let entry = b.entry_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let c = b.def(entry, "c");
        let i = b.def(entry, "i");
        b.jump(entry, header);
        b.branch(header, c, body, exit);
        b.function_mut().push_instr(
            body,
            Instr::Op {
                dst: Some(i),
                uses: vec![i],
            },
        );
        b.jump(body, header);
        b.ret(exit, &[i]);
        let f = b.finish();
        assert!(!is_ssa(&f));
        let ssa = construct_ssa(&f);
        assert!(is_ssa(&ssa), "{}", ssa);
        assert!(is_strict(&ssa), "{}", ssa);
        // The loop header needs a φ for i.
        assert!(ssa.block_instrs(header).any(|ins| ins.is_phi()));
    }

    #[test]
    fn strictness_rejects_use_before_def() {
        // Uses y in entry without defining it anywhere dominating.
        let mut b = FunctionBuilder::new("bad");
        let entry = b.entry_block();
        let later = b.new_block();
        let y = b.fresh_var("y");
        let _ = b.op(entry, "x", &[y]);
        b.jump(entry, later);
        b.function_mut().push_instr(
            later,
            Instr::Op {
                dst: Some(y),
                uses: vec![],
            },
        );
        b.ret(later, &[]);
        let f = b.finish();
        assert!(is_ssa(&f)); // singly defined...
        assert!(!is_strict(&f)); // ...but the def does not dominate the use
    }

    #[test]
    fn ssa_construction_is_idempotent_on_its_output() {
        let f = non_ssa_diamond();
        let ssa = construct_ssa(&f);
        let again = construct_ssa(&ssa);
        assert_eq!(again.num_phis(), ssa.num_phis());
        assert_eq!(again.num_vars(), ssa.num_vars());
    }
}
