//! Graph `k`-colorability and the reduction to conservative coalescing
//! (Theorem 3, Figure 2).
//!
//! Given a graph `G = (V, E)` and `k`, the reduction builds an interference
//! graph whose vertices are `V` plus one disjoint interference edge
//! `(x_e, y_e)` per edge `e = (u, v)` of `G`, and whose affinities are
//! `(u, x_e)` and `(y_e, v)`.  Every affinity can be coalesced aggressively
//! and the resulting graph is exactly `G`; hence the conservative
//! coalescing instance is positive for `K = 0` iff `G` is `k`-colorable.
//! The module also implements the extension used in the second half of the
//! proof (affinities `(u, x_{u,v})`, `(v, x_{u,v})` for every vertex pair)
//! that forces an optimal coalescing to produce a clique — a graph that is
//! both chordal and greedy-`k`-colorable.

use coalesce_core::affinity::{Affinity, AffinityGraph};
use coalesce_graph::{coloring, Graph, VertexId};

/// The output of the Theorem 3 reduction.
#[derive(Debug, Clone)]
pub struct ConservativeReduction {
    /// The conservative-coalescing instance.
    pub instance: AffinityGraph,
    /// Number of original vertices (they keep identifiers `0..n`).
    pub num_original: usize,
}

/// Builds the conservative-coalescing instance of Theorem 3 / Figure 2.
pub fn reduce_to_conservative(g: &Graph) -> ConservativeReduction {
    let originals: Vec<VertexId> = g.vertices().collect();
    let mut index_of = vec![usize::MAX; g.capacity()];
    for (i, &v) in originals.iter().enumerate() {
        index_of[v.index()] = i;
    }
    let mut graph = Graph::new(originals.len());
    let mut affinities = Vec::new();
    for (u, v) in g.edges() {
        let xe = graph.add_vertex();
        let ye = graph.add_vertex();
        graph.add_edge(xe, ye);
        affinities.push(Affinity::new(VertexId::new(index_of[u.index()]), xe));
        affinities.push(Affinity::new(ye, VertexId::new(index_of[v.index()])));
    }
    ConservativeReduction {
        instance: AffinityGraph::new(graph, affinities),
        num_original: originals.len(),
    }
}

/// Builds the *clique-forcing* extension: in addition to the Figure 2
/// instance, every pair of original vertices `(u, v)` gets a fresh vertex
/// `x_{u,v}` with affinities `(u, x_{u,v})` and `(v, x_{u,v})`.  An optimal
/// conservative coalescing of this instance merges the original vertices
/// into at most `k` classes forming a clique, which is chordal and
/// greedy-`k`-colorable.
pub fn reduce_to_conservative_clique_target(g: &Graph) -> ConservativeReduction {
    let mut reduction = reduce_to_conservative(g);
    let n = reduction.num_original;
    let mut graph = reduction.instance.graph.clone();
    let mut affinities = reduction.instance.affinities.clone();
    for u in 0..n {
        for v in u + 1..n {
            let x = graph.add_vertex();
            affinities.push(Affinity::new(VertexId::new(u), x));
            affinities.push(Affinity::new(VertexId::new(v), x));
        }
    }
    reduction.instance = AffinityGraph::new(graph, affinities);
    reduction
}

/// Returns `true` iff `g` is `k`-colorable (exact, exponential).
pub fn is_k_colorable(g: &Graph, k: usize) -> bool {
    coloring::is_k_colorable(g, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalesce_core::conservative::conservative_exact;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn cycle(n: usize) -> Graph {
        Graph::with_edges(n, (0..n).map(|i| (v(i), v((i + 1) % n))))
    }

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                g.add_edge(v(i), v(j));
            }
        }
        g
    }

    #[test]
    fn reduction_structure_matches_figure_2() {
        let g = cycle(5);
        let r = reduce_to_conservative(&g);
        // 5 original vertices + 2 per edge; interference edges only between
        // the x_e / y_e pairs; 2 affinities per edge.
        assert_eq!(r.instance.graph.num_vertices(), 5 + 10);
        assert_eq!(r.instance.graph.num_edges(), 5);
        assert_eq!(r.instance.num_affinities(), 10);
        // The instance graph is greedy-2-colorable (disjoint edges), as the
        // proof notes.
        assert!(coalesce_graph::greedy::is_greedy_k_colorable(
            &r.instance.graph,
            2
        ));
    }

    #[test]
    fn zero_budget_coalescing_iff_3_colorable() {
        // C5 is 3-colorable but not 2-colorable; K4 is not 3-colorable.
        for (g, k, expected) in [
            (cycle(5), 3, true),
            (cycle(5), 2, false),
            (complete(4), 3, false),
            (complete(4), 4, true),
        ] {
            let r = reduce_to_conservative(&g);
            let res = conservative_exact(&r.instance, k, false);
            let all_coalesced = res.stats.uncoalesced() == 0;
            assert_eq!(
                all_coalesced,
                expected,
                "graph with {} vertices, k = {k}",
                g.num_vertices()
            );
            assert_eq!(is_k_colorable(&g, k), expected);
        }
    }

    #[test]
    fn aggressively_coalescing_everything_rebuilds_the_original_graph() {
        let g = cycle(4);
        let r = reduce_to_conservative(&g);
        let result = coalesce_core::aggressive::aggressive_heuristic(&r.instance);
        assert_eq!(result.stats.uncoalesced(), 0);
        let merged = &result.coalescing.merged_graph;
        assert_eq!(merged.num_vertices(), g.num_vertices());
        assert_eq!(merged.num_edges(), g.num_edges());
    }

    #[test]
    fn clique_target_extension_yields_chordal_greedy_result() {
        // A 3-colorable graph: the optimal conservative coalescing of the
        // extended instance produces (at most) a k-clique.
        let g = complete(3);
        let r = reduce_to_conservative_clique_target(&g);
        let res = conservative_exact(&r.instance, 3, false);
        let merged = &res.coalescing.merged_graph;
        assert!(coalesce_graph::chordal::is_chordal(merged));
        assert!(coalesce_graph::greedy::is_greedy_k_colorable(merged, 3));
        assert!(coloring::is_k_colorable(merged, 3));
    }

    #[test]
    fn bipartite_graph_coalesces_fully_with_two_colors() {
        // Even cycle: 2-colorable.
        let g = cycle(6);
        let r = reduce_to_conservative(&g);
        let res = conservative_exact(&r.instance, 2, false);
        assert_eq!(res.stats.uncoalesced(), 0);
    }
}
