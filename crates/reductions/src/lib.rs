//! Executable NP-completeness reductions from *On the Complexity of
//! Register Coalescing*, plus exact solvers for the source problems.
//!
//! Each module contains (a) a small combinatorial problem with an exact
//! (exponential) solver, and (b) the paper's reduction from that problem to
//! a coalescing problem, returning a ready-to-solve
//! [`coalesce_core::AffinityGraph`] instance:
//!
//! * [`multiway_cut`] — multiway cut → **aggressive coalescing**
//!   (Theorem 2, Figure 1);
//! * [`colorability`] — graph `k`-colorability → **conservative coalescing**
//!   with `K = 0` (Theorem 3, Figure 2), including the extension that forces
//!   the coalesced graph to be a clique (hence chordal and
//!   greedy-`k`-colorable);
//! * [`sat`] — 3SAT → 4SAT → **incremental conservative coalescing** with
//!   `k = 3` (Theorem 4, Figure 4);
//! * [`vertex_cover`] — vertex cover (max degree 3) → **optimistic
//!   coalescing / de-coalescing** with `k = 4` (Theorem 6, Figures 6–7; the
//!   per-vertex widget is a functionally equivalent reconstruction, see the
//!   module documentation).
//!
//! The reductions are validated by the crate's tests and by the workspace
//! integration tests: on small instances, the optimum of the source problem
//! equals the optimum of the produced coalescing instance, computed with the
//! exact solvers of `coalesce-core`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod colorability;
pub mod multiway_cut;
pub mod sat;
pub mod vertex_cover;
