//! Multiway cut and the reduction to aggressive coalescing (Theorem 2,
//! Figure 1).
//!
//! A multiway-cut instance is a graph with `k` terminals; the question is
//! whether at most `K` edges can be removed so that every terminal ends up
//! in a different connected component.  The reduction subdivides every edge
//! `e = (u, v)` with a fresh vertex `x_e`, makes the terminals a clique of
//! **interferences**, and turns every subdivided edge into an **affinity**:
//! a coalescing of the affinity graph that leaves at most `K` affinities
//! uncoalesced corresponds exactly to a multiway cut of at most `K` edges.

use coalesce_core::affinity::{Affinity, AffinityGraph};
use coalesce_graph::{DisjointSets, Graph, VertexId};

/// A multiway-cut instance.
#[derive(Debug, Clone)]
pub struct MultiwayCutInstance {
    /// The graph to be cut.
    pub graph: Graph,
    /// The terminals that must end up in pairwise different components.
    pub terminals: Vec<VertexId>,
}

impl MultiwayCutInstance {
    /// Creates an instance; terminals must be distinct live vertices.
    pub fn new(graph: Graph, terminals: Vec<VertexId>) -> Self {
        for (i, &t) in terminals.iter().enumerate() {
            assert!(graph.is_live(t), "terminal {t} is not a live vertex");
            assert!(!terminals[..i].contains(&t), "duplicate terminal {t}");
        }
        MultiwayCutInstance { graph, terminals }
    }

    /// Exact minimum multiway cut, computed by enumerating assignments of
    /// the non-terminal vertices to terminals (exponential; ≲ 15 non-terminal
    /// vertices).
    ///
    /// The minimum number of edges to remove equals the minimum, over all
    /// partitions of the vertices into one block per terminal, of the number
    /// of cross-block edges.
    pub fn minimum_cut(&self) -> usize {
        let k = self.terminals.len();
        if k <= 1 {
            return 0;
        }
        let vertices: Vec<VertexId> = self
            .graph
            .vertices()
            .filter(|v| !self.terminals.contains(v))
            .collect();
        let n = vertices.len();
        let mut side = vec![0usize; self.graph.capacity()];
        for (i, &t) in self.terminals.iter().enumerate() {
            side[t.index()] = i;
        }
        let mut best = usize::MAX;
        let mut assignment = vec![0usize; n];
        loop {
            for (i, &v) in vertices.iter().enumerate() {
                side[v.index()] = assignment[i];
            }
            let cut = self
                .graph
                .edges()
                .filter(|&(u, v)| side[u.index()] != side[v.index()])
                .count();
            best = best.min(cut);
            // Advance the mixed-radix counter.
            let mut pos = 0;
            loop {
                if pos == n {
                    return best;
                }
                assignment[pos] += 1;
                if assignment[pos] < k {
                    break;
                }
                assignment[pos] = 0;
                pos += 1;
            }
        }
    }

    /// Decision version: can at most `budget` edges be removed?
    pub fn is_cuttable_with(&self, budget: usize) -> bool {
        self.minimum_cut() <= budget
    }
}

/// The output of the Theorem 2 reduction.
#[derive(Debug, Clone)]
pub struct AggressiveReduction {
    /// The aggressive-coalescing instance (interference clique on the
    /// terminals, one affinity per subdivided edge).
    pub instance: AffinityGraph,
    /// For every original vertex, the corresponding vertex of the instance.
    pub vertex_map: Vec<VertexId>,
    /// For every original edge `(u, v)`, the subdivision vertex `x_e` and
    /// the two affinities `(u, x_e)` and `(x_e, v)` it produced (as indices
    /// into `instance.affinities`).
    pub edge_map: Vec<(VertexId, usize, usize)>,
}

/// Builds the aggressive-coalescing instance of Theorem 2 / Figure 1 from a
/// multiway-cut instance.
pub fn reduce_to_aggressive(instance: &MultiwayCutInstance) -> AggressiveReduction {
    let originals: Vec<VertexId> = instance.graph.vertices().collect();
    let mut vertex_map = vec![VertexId::new(0); instance.graph.capacity()];
    // The interference graph has one vertex per original vertex plus one per
    // edge; the only interferences form a clique on the terminals.
    let mut graph = Graph::new(originals.len());
    for (new_index, &orig) in originals.iter().enumerate() {
        vertex_map[orig.index()] = VertexId::new(new_index);
    }
    for (i, &s) in instance.terminals.iter().enumerate() {
        for &t in &instance.terminals[i + 1..] {
            graph.add_edge(vertex_map[s.index()], vertex_map[t.index()]);
        }
    }
    let mut affinities = Vec::new();
    let mut edge_map = Vec::new();
    for (u, v) in instance.graph.edges() {
        let xe = graph.add_vertex();
        let first = affinities.len();
        affinities.push(Affinity::new(vertex_map[u.index()], xe));
        affinities.push(Affinity::new(xe, vertex_map[v.index()]));
        edge_map.push((xe, first, first + 1));
    }
    AggressiveReduction {
        instance: AffinityGraph::new(graph, affinities),
        vertex_map,
        edge_map,
    }
}

/// Recovers a multiway cut from a coalescing of the reduced instance: the
/// original edges whose two half-affinities are not both coalesced.
///
/// The size of the recovered cut is at most the number of uncoalesced
/// affinities of the coalescing.
pub fn recover_cut(
    reduction: &AggressiveReduction,
    coalescing: &mut coalesce_core::Coalescing,
) -> Vec<usize> {
    let mut cut = Vec::new();
    for (edge_index, &(xe, a1, a2)) in reduction.edge_map.iter().enumerate() {
        let f1 = reduction.instance.affinities[a1];
        let f2 = reduction.instance.affinities[a2];
        let both = coalescing.same_class(f1.a, f1.b) && coalescing.same_class(f2.a, f2.b);
        let _ = xe;
        if !both {
            cut.push(edge_index);
        }
    }
    cut
}

/// Checks that removing the edges `cut` (indices into the original edge
/// list, in [`Graph::edges`] order) separates all terminals.
pub fn cut_separates(instance: &MultiwayCutInstance, cut: &[usize]) -> bool {
    let edges: Vec<(VertexId, VertexId)> = instance.graph.edges().collect();
    let mut dsu = DisjointSets::new(instance.graph.capacity());
    for (i, &(u, v)) in edges.iter().enumerate() {
        if !cut.contains(&i) {
            dsu.union(u.index(), v.index());
        }
    }
    for (i, &s) in instance.terminals.iter().enumerate() {
        for &t in &instance.terminals[i + 1..] {
            if dsu.same_set(s.index(), t.index()) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalesce_core::aggressive::aggressive_exact;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    /// The example of Figure 1: a small graph with three terminals.
    fn figure_1_like_instance() -> MultiwayCutInstance {
        // Vertices: s1, s2, s3 (terminals), u, v, w.
        // Edges: s1-u, u-s2, u-v, v-s3, v-w, w-s1 (6 edges).
        let mut g = Graph::new(6);
        let (s1, s2, s3, u, vv, w) = (v(0), v(1), v(2), v(3), v(4), v(5));
        g.add_edge(s1, u);
        g.add_edge(u, s2);
        g.add_edge(u, vv);
        g.add_edge(vv, s3);
        g.add_edge(vv, w);
        g.add_edge(w, s1);
        MultiwayCutInstance::new(g, vec![s1, s2, s3])
    }

    #[test]
    fn minimum_cut_of_triangle_of_terminals() {
        // Terminals pairwise connected: every edge must be cut.
        let mut g = Graph::new(3);
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        g.add_edge(v(0), v(2));
        let inst = MultiwayCutInstance::new(g, vec![v(0), v(1), v(2)]);
        assert_eq!(inst.minimum_cut(), 3);
        assert!(!inst.is_cuttable_with(2));
    }

    #[test]
    fn minimum_cut_with_shared_middle_vertex() {
        // Star: center c adjacent to three terminals; cutting 2 edges
        // suffices (the center joins one terminal's side).
        let mut g = Graph::new(4);
        for t in 0..3 {
            g.add_edge(v(3), v(t));
        }
        let inst = MultiwayCutInstance::new(g, vec![v(0), v(1), v(2)]);
        assert_eq!(inst.minimum_cut(), 2);
    }

    #[test]
    fn figure_1_reduction_preserves_the_optimum() {
        let inst = figure_1_like_instance();
        let optimum_cut = inst.minimum_cut();
        let reduction = reduce_to_aggressive(&inst);
        // The reduced instance has one affinity pair per edge and an
        // interference triangle on the terminals.
        assert_eq!(reduction.instance.graph.num_edges(), 3);
        assert_eq!(
            reduction.instance.num_affinities(),
            2 * inst.graph.num_edges()
        );
        let result = aggressive_exact(&reduction.instance);
        assert_eq!(
            result.stats.uncoalesced(),
            optimum_cut,
            "optimal aggressive coalescing must leave exactly min-cut affinities uncoalesced"
        );
    }

    #[test]
    fn recovered_cut_is_a_valid_multiway_cut() {
        let inst = figure_1_like_instance();
        let reduction = reduce_to_aggressive(&inst);
        let mut result = aggressive_exact(&reduction.instance);
        let cut = recover_cut(&reduction, &mut result.coalescing);
        assert!(cut_separates(&inst, &cut));
        assert!(cut.len() <= result.stats.uncoalesced());
    }

    #[test]
    fn zero_terminal_and_single_terminal_instances_are_trivial() {
        let g = Graph::with_edges(3, [(v(0), v(1)), (v(1), v(2))]);
        let inst = MultiwayCutInstance::new(g.clone(), vec![]);
        assert_eq!(inst.minimum_cut(), 0);
        let inst1 = MultiwayCutInstance::new(g, vec![v(0)]);
        assert_eq!(inst1.minimum_cut(), 0);
    }

    #[test]
    fn subdivision_means_cut_never_needs_both_halves() {
        // For every edge, an optimal coalescing loses at most one of the two
        // half-affinities.
        let inst = figure_1_like_instance();
        let reduction = reduce_to_aggressive(&inst);
        let mut result = aggressive_exact(&reduction.instance);
        for &(_, a1, a2) in &reduction.edge_map {
            let f1 = reduction.instance.affinities[a1];
            let f2 = reduction.instance.affinities[a2];
            let lost_both = !result.coalescing.same_class(f1.a, f1.b)
                && !result.coalescing.same_class(f2.a, f2.b);
            assert!(!lost_both, "an optimal solution never gives up both halves");
        }
    }
}
