//! SAT, the 3SAT → 4SAT detour, and the reduction to incremental
//! conservative coalescing (Theorem 4, Figure 4).
//!
//! The reduction builds, from a 4SAT formula, a graph that is 3-colorable
//! iff the formula is satisfiable: a base triangle `T, F, R`, a triangle
//! `x_i, ¬x_i, R` per variable, and per clause the Figure 4 widget made of
//! the vertices `a_{i,1..4}`, `b_{i,1..2}`, `c_{i,1..2}`.  Theorem 4 then
//! takes a 3SAT formula, adds a fresh variable `x₀` to every clause (the
//! 4SAT formula is trivially satisfiable by `x₀ = true`), and asks whether
//! the affinity `(x₀, F)` can be coalesced with 3 colors — which holds iff
//! the original 3SAT formula is satisfiable.

use coalesce_graph::{Graph, VertexId};

/// A literal: variable index plus polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Literal {
    /// Variable index (0-based).
    pub var: usize,
    /// `true` for the positive literal, `false` for the negation.
    pub positive: bool,
}

impl Literal {
    /// Positive literal of variable `var`.
    pub fn pos(var: usize) -> Self {
        Literal {
            var,
            positive: true,
        }
    }

    /// Negative literal of variable `var`.
    pub fn neg(var: usize) -> Self {
        Literal {
            var,
            positive: false,
        }
    }

    /// Evaluates the literal under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

/// A CNF formula (each clause is a disjunction of literals).
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    /// Number of variables.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Literal>>,
}

impl Cnf {
    /// Creates a formula over `num_vars` variables with the given clauses.
    pub fn new(num_vars: usize, clauses: Vec<Vec<Literal>>) -> Self {
        for clause in &clauses {
            for lit in clause {
                assert!(lit.var < num_vars, "literal variable out of range");
            }
        }
        Cnf { num_vars, clauses }
    }

    /// Evaluates the formula under a full assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment)))
    }

    /// DPLL satisfiability with unit propagation; returns a satisfying
    /// assignment if one exists.
    pub fn solve(&self) -> Option<Vec<bool>> {
        let mut assignment: Vec<Option<bool>> = vec![None; self.num_vars];
        if self.dpll(&mut assignment) {
            Some(assignment.into_iter().map(|a| a.unwrap_or(false)).collect())
        } else {
            None
        }
    }

    /// Returns `true` iff the formula is satisfiable.
    pub fn is_satisfiable(&self) -> bool {
        self.solve().is_some()
    }

    fn dpll(&self, assignment: &mut Vec<Option<bool>>) -> bool {
        // Unit propagation.
        loop {
            let mut unit: Option<Literal> = None;
            for clause in &self.clauses {
                let mut unassigned = Vec::new();
                let mut satisfied = false;
                for lit in clause {
                    match assignment[lit.var] {
                        Some(value) => {
                            if value == lit.positive {
                                satisfied = true;
                                break;
                            }
                        }
                        None => unassigned.push(*lit),
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned.len() {
                    0 => return false, // conflict
                    1 => {
                        unit = Some(unassigned[0]);
                        break;
                    }
                    _ => {}
                }
            }
            match unit {
                Some(lit) => assignment[lit.var] = Some(lit.positive),
                None => break,
            }
        }
        // Check for completion.
        let next = (0..self.num_vars).find(|&v| assignment[v].is_none());
        let Some(var) = next else {
            return self.eval(
                &assignment
                    .iter()
                    .map(|a| a.unwrap_or(false))
                    .collect::<Vec<_>>(),
            );
        };
        for value in [true, false] {
            let saved = assignment.clone();
            assignment[var] = Some(value);
            if self.dpll(assignment) {
                return true;
            }
            *assignment = saved;
        }
        false
    }
}

/// The graph built from a 4SAT formula (the Theorem 4 construction) with
/// handles to the special vertices.
#[derive(Debug, Clone)]
pub struct SatGraph {
    /// The constructed graph: 3-colorable iff the formula is satisfiable.
    pub graph: Graph,
    /// The `T` (true) vertex.
    pub true_vertex: VertexId,
    /// The `F` (false) vertex.
    pub false_vertex: VertexId,
    /// The `R` vertex of the base triangle.
    pub r_vertex: VertexId,
    /// For each variable, its positive-literal vertex.
    pub positive: Vec<VertexId>,
    /// For each variable, its negative-literal vertex.
    pub negative: Vec<VertexId>,
}

/// Builds the Figure 4 graph from a 4SAT (or ≤4-literal CNF) formula.
///
/// # Panics
///
/// Panics if a clause has fewer than 1 or more than 4 literals.
pub fn formula_to_graph(cnf: &Cnf) -> SatGraph {
    let mut graph = Graph::new(0);
    let t = graph.add_vertex();
    let f = graph.add_vertex();
    let r = graph.add_vertex();
    graph.add_edge(t, f);
    graph.add_edge(t, r);
    graph.add_edge(f, r);

    let mut positive = Vec::with_capacity(cnf.num_vars);
    let mut negative = Vec::with_capacity(cnf.num_vars);
    for _ in 0..cnf.num_vars {
        let p = graph.add_vertex();
        let n = graph.add_vertex();
        graph.add_edge(p, n);
        graph.add_edge(p, r);
        graph.add_edge(n, r);
        positive.push(p);
        negative.push(n);
    }

    let literal_vertex = |lit: &Literal| -> VertexId {
        if lit.positive {
            positive[lit.var]
        } else {
            negative[lit.var]
        }
    };

    for clause in &cnf.clauses {
        assert!(
            (1..=4).contains(&clause.len()),
            "clauses must have between 1 and 4 literals"
        );
        // Pad short clauses by repeating the last literal (logically
        // equivalent).
        let mut lits: Vec<Literal> = clause.clone();
        while lits.len() < 4 {
            lits.push(*lits.last().expect("non-empty clause"));
        }
        // Figure 4 widget: an OR-gadget tree.  b1 = OR(y1, y2), b2 = OR(y3,
        // y4), and the pair (c1, c2) forces OR(b1, b2) to be true.  Each OR
        // gadget is the classical 3-colorability OR widget with three fresh
        // vertices a, a', out.
        let b1 = or_gadget(
            &mut graph,
            literal_vertex(&lits[0]),
            literal_vertex(&lits[1]),
            r,
            f,
        );
        let b2 = or_gadget(
            &mut graph,
            literal_vertex(&lits[2]),
            literal_vertex(&lits[3]),
            r,
            f,
        );
        // Force OR(b1, b2) true: c1 adjacent to b1, b2 and F... use another
        // OR gadget whose output is forced to T's color by making it
        // adjacent to both F and R.
        let c = or_gadget(&mut graph, b1, b2, r, f);
        graph.add_edge(c, f);
        graph.add_edge(c, r);
    }

    SatGraph {
        graph,
        true_vertex: t,
        false_vertex: f,
        r_vertex: r,
        positive,
        negative,
    }
}

/// The classical OR widget for 3-colorability: returns an output vertex
/// whose color can be the `T` color iff at least one input has the `T`
/// color, assuming inputs are colored with the `T`/`F` colors (they are
/// adjacent to `r`).
fn or_gadget(
    graph: &mut Graph,
    in1: VertexId,
    in2: VertexId,
    _r: VertexId,
    _f: VertexId,
) -> VertexId {
    let a1 = graph.add_vertex();
    let a2 = graph.add_vertex();
    let out = graph.add_vertex();
    graph.add_edge(a1, a2);
    graph.add_edge(a1, in1);
    graph.add_edge(a2, in2);
    graph.add_edge(out, a1);
    graph.add_edge(out, a2);
    out
}

/// The Theorem 4 reduction output: an incremental conservative coalescing
/// query on a 3-colorable graph.
#[derive(Debug, Clone)]
pub struct IncrementalReduction {
    /// The constructed graph (always 3-colorable).
    pub graph: Graph,
    /// The first endpoint of the affinity to coalesce (`x₀`).
    pub x: VertexId,
    /// The second endpoint of the affinity (`F`).
    pub y: VertexId,
}

/// Reduces a 3SAT formula to an incremental conservative coalescing query
/// with `k = 3` (Theorem 4): add a fresh variable `x₀` to every clause and
/// ask whether the affinity `(x₀, F)` is coalescible in the Figure 4 graph
/// of the resulting 4SAT formula.
pub fn reduce_3sat_to_incremental(cnf: &Cnf) -> IncrementalReduction {
    for clause in &cnf.clauses {
        assert!(
            (1..=3).contains(&clause.len()),
            "input must be a 3SAT formula"
        );
    }
    let x0 = cnf.num_vars;
    let clauses: Vec<Vec<Literal>> = cnf
        .clauses
        .iter()
        .map(|c| {
            let mut c = c.clone();
            c.push(Literal::pos(x0));
            c
        })
        .collect();
    let cnf4 = Cnf::new(cnf.num_vars + 1, clauses);
    let sat_graph = formula_to_graph(&cnf4);
    IncrementalReduction {
        x: sat_graph.positive[x0],
        y: sat_graph.false_vertex,
        graph: sat_graph.graph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalesce_core::incremental::incremental_exact;
    use coalesce_graph::coloring;

    fn lit(v: i32) -> Literal {
        if v > 0 {
            Literal::pos((v - 1) as usize)
        } else {
            Literal::neg((-v - 1) as usize)
        }
    }

    fn cnf(num_vars: usize, clauses: &[&[i32]]) -> Cnf {
        Cnf::new(
            num_vars,
            clauses
                .iter()
                .map(|c| c.iter().map(|&v| lit(v)).collect())
                .collect(),
        )
    }

    #[test]
    fn dpll_solves_simple_formulas() {
        let sat = cnf(3, &[&[1, 2], &[-1, 3], &[-2, -3]]);
        assert!(sat.is_satisfiable());
        let a = sat.solve().unwrap();
        assert!(sat.eval(&a));

        let unsat = cnf(1, &[&[1], &[-1]]);
        assert!(!unsat.is_satisfiable());
    }

    #[test]
    fn dpll_handles_the_pigeonhole_style_unsat_instance() {
        // (x1 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (x1 ∨ ¬x2) ∧ (¬x1 ∨ ¬x2) is unsatisfiable.
        let f = cnf(2, &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        assert!(!f.is_satisfiable());
    }

    #[test]
    fn formula_graph_is_3_colorable_iff_satisfiable() {
        let sat = cnf(3, &[&[1, 2, 3], &[-1, -2, 3], &[1, -3, 2]]);
        let g = formula_to_graph(&sat);
        assert_eq!(coloring::is_k_colorable(&g.graph, 3), sat.is_satisfiable());

        let unsat = cnf(2, &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        let g2 = formula_to_graph(&unsat);
        assert_eq!(
            coloring::is_k_colorable(&g2.graph, 3),
            unsat.is_satisfiable()
        );
    }

    #[test]
    fn theorem_4_reduction_graph_is_always_3_colorable() {
        // The 4SAT formula is satisfiable with x0 = true, so the reduction
        // graph must always be 3-colorable, satisfiable 3SAT input or not.
        for f in [
            cnf(3, &[&[1, 2, 3], &[-1, -2, -3]]),
            cnf(2, &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]),
        ] {
            let r = reduce_3sat_to_incremental(&f);
            assert!(coloring::is_k_colorable(&r.graph, 3));
        }
    }

    #[test]
    fn incremental_coalescibility_matches_3sat_satisfiability() {
        let cases = [
            (cnf(2, &[&[1, 2], &[-1, 2]]), true),
            (cnf(2, &[&[1], &[-1, 2], &[-2, 1]]), true),
            (cnf(2, &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]), false),
            (cnf(1, &[&[1], &[-1]]), false),
        ];
        for (formula, expected) in cases {
            assert_eq!(formula.is_satisfiable(), expected);
            let r = reduce_3sat_to_incremental(&formula);
            let answer = incremental_exact(&r.graph, 3, r.x, r.y);
            assert_eq!(
                answer.is_coalescible(),
                expected,
                "reduction disagrees with satisfiability"
            );
        }
    }

    #[test]
    fn literal_evaluation() {
        assert!(Literal::pos(0).eval(&[true]));
        assert!(!Literal::neg(0).eval(&[true]));
        assert!(Literal::neg(1).eval(&[true, false]));
    }
}
