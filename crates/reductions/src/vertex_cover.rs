//! Vertex cover and the reduction to optimistic coalescing / de-coalescing
//! (Theorem 6, Figures 6–7).
//!
//! The paper reduces vertex cover on graphs of maximum degree 3 to the
//! de-coalescing problem with `k = 4`: every vertex `v` of the source graph
//! becomes a *structure* with a central affinity `(A_v, A_v')`, and the
//! coalesced graph is greedy-4-colorable iff the set of structures whose
//! central affinity is de-coalesced forms a vertex cover.
//!
//! The hexagon widgets of Figure 6 are only shown graphically in the paper;
//! this module uses a functionally equivalent reconstruction of the
//! per-vertex structure (10 vertices) with the three properties the proof
//! relies on, each verified by the tests:
//!
//! 1. while the central pair is **coalesced** and at least one incident
//!    edge's partner structure is intact, the structure contains a subgraph
//!    of minimum degree ≥ 4 and cannot be simplified;
//! 2. if the central pair is **de-coalesced**, the whole structure (branch
//!    vertices included) is eliminated by the greedy scheme regardless of
//!    its neighbors, relieving them;
//! 3. if every incident edge is covered by the other endpoint (all partner
//!    branches eliminated), the structure is eliminated even while
//!    coalesced.
//!
//! Consequently the minimum number of de-coalesced affinities equals the
//! minimum vertex cover, which the tests check against the exact solvers.
//! Unlike the paper's gadget the reconstruction is not chordal; the
//! greedy-4-colorability of the original (de-coalesced) graph — the
//! property the problem statement requires — is preserved.

use coalesce_core::affinity::{Affinity, AffinityGraph};
use coalesce_graph::{Graph, VertexId};

/// A vertex-cover instance.
#[derive(Debug, Clone)]
pub struct VertexCoverInstance {
    /// The graph to cover.
    pub graph: Graph,
}

impl VertexCoverInstance {
    /// Wraps a graph.
    pub fn new(graph: Graph) -> Self {
        VertexCoverInstance { graph }
    }

    /// Exact minimum vertex cover size (branch and bound on edges).
    pub fn minimum_cover(&self) -> usize {
        let edges: Vec<(VertexId, VertexId)> = self.graph.edges().collect();
        let mut best = self.graph.num_vertices();
        let mut chosen: Vec<VertexId> = Vec::new();
        fn search(edges: &[(VertexId, VertexId)], chosen: &mut Vec<VertexId>, best: &mut usize) {
            if chosen.len() >= *best {
                return;
            }
            let uncovered = edges
                .iter()
                .find(|(u, v)| !chosen.contains(u) && !chosen.contains(v));
            match uncovered {
                None => *best = chosen.len(),
                Some(&(u, v)) => {
                    chosen.push(u);
                    search(edges, chosen, best);
                    chosen.pop();
                    chosen.push(v);
                    search(edges, chosen, best);
                    chosen.pop();
                }
            }
        }
        search(&edges, &mut chosen, &mut best);
        best
    }

    /// Decision version: is there a cover of size at most `budget`?
    pub fn has_cover_of_size(&self, budget: usize) -> bool {
        self.minimum_cover() <= budget
    }
}

/// Handles into one per-vertex structure of the reduction.
#[derive(Debug, Clone)]
pub struct Structure {
    /// The two endpoints of the central affinity.
    pub a: VertexId,
    /// Second endpoint of the central affinity.
    pub a_prime: VertexId,
    /// The three branch vertices (one per potential incident edge).
    pub branches: [VertexId; 3],
}

/// The output of the Theorem 6 reduction.
#[derive(Debug, Clone)]
pub struct OptimisticReduction {
    /// The optimistic-coalescing instance: greedy-4-colorable graph, one
    /// affinity per source vertex, all affinities simultaneously
    /// coalescible.
    pub instance: AffinityGraph,
    /// Per source vertex, its structure's handles (indexed like the source
    /// graph's vertex identifiers).
    pub structures: Vec<Structure>,
    /// The register count of the instance (always 4).
    pub k: usize,
}

/// Builds one per-vertex structure into `graph` and returns its handles.
fn build_structure(graph: &mut Graph) -> Structure {
    // Core vertices c1..c5, central pair A / A', branches b1..b3.
    let c: Vec<VertexId> = (0..5).map(|_| graph.add_vertex()).collect();
    let (c1, c2, c3, c4, c5) = (c[0], c[1], c[2], c[3], c[4]);
    let a = graph.add_vertex();
    let a_prime = graph.add_vertex();
    let b: Vec<VertexId> = (0..3).map(|_| graph.add_vertex()).collect();

    // Core edges: c5 adjacent to all of c1..c4, plus c1-c2, c1-c3, c2-c4,
    // c3-c4 (so internal core degrees are c1..c4: 3, c5: 4).
    for &ci in &c[0..4] {
        graph.add_edge(c5, ci);
    }
    graph.add_edge(c1, c2);
    graph.add_edge(c1, c3);
    graph.add_edge(c2, c4);
    graph.add_edge(c3, c4);

    // Central pair: A'' (coalesced) must be adjacent to c1, c2, c3 and all
    // branches; split so that each half has degree 3 and is simplifiable
    // once de-coalesced.
    graph.add_edge(a, c1);
    graph.add_edge(a, c2);
    graph.add_edge(a, b[0]);
    graph.add_edge(a_prime, c3);
    graph.add_edge(a_prime, b[1]);
    graph.add_edge(a_prime, b[2]);

    // Branches: each adjacent to c4, c5 and the central pair (above); the
    // fourth neighbor is the partner branch of the adjacent structure.
    for &bi in &b {
        graph.add_edge(bi, c4);
        graph.add_edge(bi, c5);
    }

    Structure {
        a,
        a_prime,
        branches: [b[0], b[1], b[2]],
    }
}

/// Builds the optimistic-coalescing instance of Theorem 6 from a vertex
/// cover instance whose graph has maximum degree 3.
///
/// # Panics
///
/// Panics if some vertex of the source graph has degree greater than 3.
pub fn reduce_to_optimistic(instance: &VertexCoverInstance) -> OptimisticReduction {
    let source = &instance.graph;
    assert!(
        source.max_degree() <= 3,
        "the Theorem 6 reduction requires maximum degree 3"
    );
    let mut graph = Graph::new(0);
    let mut structures: Vec<Structure> = Vec::new();
    let mut by_source: Vec<Option<usize>> = vec![None; source.capacity()];
    let originals: Vec<VertexId> = source.vertices().collect();
    for (i, &v) in originals.iter().enumerate() {
        structures.push(build_structure(&mut graph));
        by_source[v.index()] = Some(i);
    }
    // Connect one branch of each endpoint's structure per source edge.
    let mut used: Vec<usize> = vec![0; structures.len()];
    for (u, v) in source.edges() {
        let iu = by_source[u.index()].expect("live source vertex");
        let iv = by_source[v.index()].expect("live source vertex");
        let bu = structures[iu].branches[used[iu]];
        let bv = structures[iv].branches[used[iv]];
        used[iu] += 1;
        used[iv] += 1;
        graph.add_edge(bu, bv);
    }
    let affinities = structures
        .iter()
        .map(|s| Affinity::new(s.a, s.a_prime))
        .collect();
    OptimisticReduction {
        instance: AffinityGraph::new(graph, affinities),
        structures,
        k: 4,
    }
}

/// Given a set of source vertices (a candidate cover), returns the kept-
/// affinity coalescing in which exactly the structures *outside* the set
/// stay coalesced, and reports whether the resulting graph is
/// greedy-4-colorable.
pub fn decoalesce_cover(
    reduction: &OptimisticReduction,
    cover: &[usize],
) -> (coalesce_core::Coalescing, bool) {
    let mut coalescing = coalesce_core::Coalescing::identity(&reduction.instance.graph);
    for (i, s) in reduction.structures.iter().enumerate() {
        if !cover.contains(&i) {
            coalescing
                .merge(s.a, s.a_prime)
                .expect("central pairs never interfere");
        }
    }
    let ok = coalesce_graph::greedy::is_greedy_k_colorable(&coalescing.merged_graph, reduction.k);
    (coalescing, ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalesce_core::optimistic::{all_affinities_coalescible, decoalesce_exact};
    use coalesce_graph::greedy;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn path(n: usize) -> VertexCoverInstance {
        VertexCoverInstance::new(Graph::with_edges(n, (1..n).map(|i| (v(i - 1), v(i)))))
    }

    fn cycle(n: usize) -> VertexCoverInstance {
        VertexCoverInstance::new(Graph::with_edges(n, (0..n).map(|i| (v(i), v((i + 1) % n)))))
    }

    #[test]
    fn exact_vertex_cover_on_known_graphs() {
        assert_eq!(path(2).minimum_cover(), 1);
        assert_eq!(path(4).minimum_cover(), 2);
        assert_eq!(cycle(4).minimum_cover(), 2);
        assert_eq!(cycle(5).minimum_cover(), 3);
        assert_eq!(VertexCoverInstance::new(Graph::new(3)).minimum_cover(), 0);
    }

    #[test]
    fn reduction_instance_is_well_formed() {
        let inst = path(3);
        let r = reduce_to_optimistic(&inst);
        // 10 vertices per structure.
        assert_eq!(r.instance.graph.num_vertices(), 30);
        assert_eq!(r.instance.num_affinities(), 3);
        // The de-coalesced graph is greedy-4-colorable and all affinities
        // can be coalesced simultaneously (the problem's preconditions).
        assert!(greedy::is_greedy_k_colorable(&r.instance.graph, 4));
        assert!(all_affinities_coalescible(&r.instance));
    }

    #[test]
    fn coalescing_everything_blocks_the_greedy_scheme() {
        // With at least one edge, coalescing every central pair leaves a
        // stuck subgraph.
        let r = reduce_to_optimistic(&path(2));
        let (_, ok) = decoalesce_cover(&r, &[]);
        assert!(!ok);
    }

    #[test]
    fn decoalescing_a_cover_restores_colorability() {
        let inst = path(3); // edges (0,1), (1,2); {1} is a cover
        let r = reduce_to_optimistic(&inst);
        let (_, ok_cover) = decoalesce_cover(&r, &[1]);
        assert!(ok_cover);
        let (_, ok_non_cover) = decoalesce_cover(&r, &[0]);
        assert!(!ok_non_cover, "{{0}} does not cover edge (1,2)");
        let (_, ok_both_ends) = decoalesce_cover(&r, &[0, 2]);
        assert!(ok_both_ends);
    }

    #[test]
    fn minimum_decoalescing_equals_minimum_vertex_cover() {
        for inst in [path(2), path(3), path(4), cycle(3), cycle(4)] {
            let cover = inst.minimum_cover();
            let r = reduce_to_optimistic(&inst);
            let (decoalesced, _) =
                decoalesce_exact(&r.instance, r.k).expect("base graph is greedy-4-colorable");
            assert_eq!(
                decoalesced, cover,
                "minimum de-coalescing must equal minimum vertex cover"
            );
        }
    }

    #[test]
    fn isolated_vertices_need_no_decoalescing() {
        let inst = VertexCoverInstance::new(Graph::new(2));
        let r = reduce_to_optimistic(&inst);
        let (decoalesced, _) = decoalesce_exact(&r.instance, r.k).unwrap();
        assert_eq!(decoalesced, 0);
    }

    #[test]
    #[should_panic(expected = "maximum degree 3")]
    fn degree_four_source_graphs_are_rejected() {
        let mut g = Graph::new(5);
        for i in 1..5 {
            g.add_edge(v(0), v(i));
        }
        reduce_to_optimistic(&VertexCoverInstance::new(g));
    }

    #[test]
    fn optimistic_heuristic_result_is_always_colorable_on_reductions() {
        let r = reduce_to_optimistic(&cycle(4));
        let res = coalesce_core::optimistic::optimistic_coalesce(&r.instance, r.k);
        assert!(greedy::is_greedy_k_colorable(
            &res.coalescing.merged_graph,
            r.k
        ));
        // The heuristic gives up at least as many affinities as the optimum
        // (= the minimum vertex cover of C4, which is 2).
        assert!(res.stats.uncoalesced() >= 2);
    }
}
