//! `serve` — allocation as a service over JSONL.
//!
//! ```text
//! serve < requests.jsonl > responses.jsonl
//! serve --workers 8 --queue-depth 256 --verify boundaries
//! serve --tcp 127.0.0.1:7077
//! echo '{"id":1,"kind":"dimacs","text":"p edge 3 2\ne 1 2\ne 2 3\n","k":2}' | serve
//! ```
//!
//! One request object per stdin line, one response object per stdout
//! line (see `coalesce_serve::protocol`).  The queue is bounded: when it
//! is full the server answers `{"status":"overloaded","retry_after_ms":N}`
//! instead of buffering (use `--blocking` to wait for space instead —
//! deterministic piping).  EOF on stdin drains the queue, joins every
//! worker, and prints a service summary to stderr — the clean-shutdown
//! path the CI soak exercises.

#![deny(clippy::unwrap_used)]

use coalesce_serve::{Engine, EngineConfig, Response, Server, ServerConfig};
use coalesce_verify::VerifyLevel;
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One CLI flag: single source of truth for the parser and `--help`
/// (same idiom as `run-experiments`).
struct FlagSpec {
    long: &'static str,
    metavar: Option<&'static str>,
    help: &'static [&'static str],
}

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        long: "--workers",
        metavar: Some("<N>"),
        help: &["Worker threads serving requests (default: 2)"],
    },
    FlagSpec {
        long: "--queue-depth",
        metavar: Some("<N>"),
        help: &["Bounded queue capacity before backpressure (default: 64)"],
    },
    FlagSpec {
        long: "--retry-after-ms",
        metavar: Some("<MS>"),
        help: &["Retry hint sent on `overloaded` responses (default: 25)"],
    },
    FlagSpec {
        long: "--blocking",
        metavar: None,
        help: &[
            "Wait for queue space instead of answering `overloaded`",
            "(deterministic piping; stdin mode only)",
        ],
    },
    FlagSpec {
        long: "--default-budget",
        metavar: Some("<N>"),
        help: &[
            "Work budget (counter units) applied to requests that",
            "carry none (default: unlimited)",
        ],
    },
    FlagSpec {
        long: "--verify",
        metavar: Some("<LEVEL>"),
        help: &[
            "Re-verify every answer before responding and tag it",
            "with `verified` (off, boundaries, paranoid; default: off)",
        ],
    },
    FlagSpec {
        long: "--chaos",
        metavar: None,
        help: &[
            "Honour `panic` requests (fault-injection testing of the",
            "panic-isolation path)",
        ],
    },
    FlagSpec {
        long: "--tcp",
        metavar: Some("<ADDR>"),
        help: &[
            "Listen on ADDR (e.g. 127.0.0.1:7077) instead of stdin;",
            "one JSONL session per connection, shared worker pool",
        ],
    },
    FlagSpec {
        long: "--help",
        metavar: None,
        help: &["Show this help"],
    },
];

fn usage() -> String {
    let mut out = String::from(
        "serve: allocation-as-a-service JSONL server\n\
         \n\
         USAGE:\n\
         \x20   serve [OPTIONS] < requests.jsonl > responses.jsonl\n\
         \n\
         OPTIONS:\n",
    );
    for spec in FLAGS {
        let mut head = String::new();
        head.push_str(spec.long);
        if let Some(metavar) = spec.metavar {
            head.push(' ');
            head.push_str(metavar);
        }
        for (i, line) in spec.help.iter().enumerate() {
            if i == 0 {
                out.push_str(&format!("    {head:<24}{line}\n"));
            } else {
                out.push_str(&format!("    {:<24}{line}\n", ""));
            }
        }
    }
    out
}

struct Options {
    server: ServerConfig,
    engine: EngineConfig,
    blocking: bool,
    tcp: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut server = ServerConfig::default();
    let mut engine = EngineConfig::default();
    let mut blocking = false;
    let mut tcp = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let Some(spec) = FLAGS.iter().find(|spec| spec.long == arg.as_str()) else {
            return Err(format!("unknown argument `{arg}`\n\n{}", usage()));
        };
        let value = if spec.metavar.is_some() {
            Some(
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{} requires a value", spec.long))?,
            )
        } else {
            None
        };
        let uint = |name: &str| -> Result<u64, String> {
            let v = value.clone().unwrap_or_default();
            v.parse()
                .map_err(|_| format!("{name} expects an unsigned integer, got `{v}`"))
        };
        match spec.long {
            "--help" => {
                print!("{}", usage());
                return Ok(None);
            }
            "--workers" => {
                server.workers = usize::try_from(uint("--workers")?)
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--workers expects a positive integer")?;
            }
            "--queue-depth" => {
                server.queue_depth = usize::try_from(uint("--queue-depth")?)
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--queue-depth expects a positive integer")?;
            }
            "--retry-after-ms" => server.retry_after_ms = uint("--retry-after-ms")?,
            "--blocking" => blocking = true,
            "--default-budget" => engine.default_budget = Some(uint("--default-budget")?),
            "--verify" => {
                let v = value.clone().unwrap_or_default();
                engine.verify = v.parse::<VerifyLevel>()?;
            }
            "--chaos" => engine.chaos = true,
            "--tcp" => tcp.clone_from(&value),
            other => unreachable!("flag `{other}` is in FLAGS but not dispatched"),
        }
    }
    if blocking && tcp.is_some() {
        return Err("--blocking only applies to stdin mode".into());
    }
    Ok(Some(Options {
        server,
        engine,
        blocking,
        tcp,
    }))
}

/// Spawns the response writer: drains `rx` and writes one compact JSON
/// line per response, flushing each (clients pipeline against us).
fn spawn_writer<W: Write + Send + 'static>(mut out: W, rx: Receiver<Response>) -> JoinHandle<u64> {
    std::thread::spawn(move || {
        let mut written = 0u64;
        while let Ok(resp) = rx.recv() {
            let line = resp.to_json().to_compact_string();
            if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                // Client hung up; keep draining so submitters never block
                // on a dead writer.
                continue;
            }
            written += 1;
        }
        written
    })
}

/// One JSONL session: reads lines from `input`, submits each, responses
/// flow through the writer thread.  Returns lines read.
fn pump_session<R: BufRead>(
    input: R,
    server: &Server,
    reply: &Sender<Response>,
    blocking: bool,
) -> u64 {
    let mut lines = 0u64;
    for line in input.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        if blocking {
            server.submit_blocking(line, reply);
        } else {
            server.try_submit(line, reply);
        }
    }
    lines
}

fn run_stdio(options: &Options) -> ExitCode {
    let engine = Arc::new(Engine::new(options.engine.clone()));
    let server = Server::start(engine, &options.server);
    let (tx, rx) = channel();
    let writer = spawn_writer(std::io::stdout(), rx);

    let stdin = std::io::stdin();
    let submitted = pump_session(stdin.lock(), &server, &tx, options.blocking);

    // EOF: drain the queue, join the pool, then let the writer finish.
    let summary = server.shutdown();
    drop(tx);
    let written = writer.join().unwrap_or(0);
    eprintln!(
        "serve: {submitted} request(s) in, {written} response(s) out, \
         {} panic(s) isolated, {} worker(s) exited cleanly",
        summary.panics_isolated, summary.clean_worker_exits
    );
    ExitCode::SUCCESS
}

fn run_tcp(options: &Options, addr: &str) -> ExitCode {
    let listener = match std::net::TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("serve: listening on {addr}");
    let engine = Arc::new(Engine::new(options.engine.clone()));
    let server = Arc::new(Server::start(engine, &options.server));
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let Ok(read_half) = stream.try_clone() else {
                return;
            };
            let (tx, rx) = channel();
            let writer = spawn_writer(stream, rx);
            pump_session(std::io::BufReader::new(read_half), &server, &tx, false);
            drop(tx);
            let _ = writer.join();
        });
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    match options.tcp.as_deref() {
        Some(addr) => run_tcp(&options, addr),
        None => run_stdio(&options),
    }
}
