//! Per-request deadlines and deterministic work budgets.
//!
//! Every request runs under two independent limits:
//!
//! * a **wall-clock deadline** (`deadline_ms`), measured from the moment a
//!   worker picks the request up.  Wall clock is inherently
//!   nondeterministic, so deterministic replays (the E18 soak) only ever
//!   use `deadline_ms: 0` — "already expired at pickup" — which triggers
//!   identically on every run;
//! * a **work budget** in *counter units*: the deterministic algorithmic
//!   event counts the passes already report through `coalesce-stats`
//!   (`solver.nodes`, `spill.victims`, liveness iterations, ...).  Rungs
//!   charge what they measured (or a structural proxy where a cache would
//!   make the measured value schedule-dependent), so for a fixed request
//!   the point of exhaustion — and therefore the degradation decision —
//!   is bit-for-bit reproducible.

use std::time::Instant;

/// Which limit ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exhausted {
    /// The wall-clock deadline expired.
    Deadline,
    /// The deterministic work budget is spent.
    Work,
}

impl Exhausted {
    /// The `degrade_reason` wire label.
    pub fn reason(self) -> &'static str {
        match self {
            Exhausted::Deadline => "deadline",
            Exhausted::Work => "budget",
        }
    }
}

/// The live budget of one request.
#[derive(Debug, Clone)]
pub struct Budget {
    deadline: Option<Instant>,
    /// Remaining work units; `None` = unlimited.
    remaining: Option<u64>,
}

impl Budget {
    /// Creates a budget.  `deadline_ms` counts from `start` (the pickup
    /// instant); `work` is the total unit allowance.
    pub fn new(start: Instant, deadline_ms: Option<u64>, work: Option<u64>) -> Self {
        Budget {
            deadline: deadline_ms
                .map(|ms| start + std::time::Duration::from_millis(ms.min(86_400_000))),
            remaining: work,
        }
    }

    /// An unlimited budget.
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            remaining: None,
        }
    }

    /// Consumes `units` of work (saturating at zero).
    pub fn charge(&mut self, units: u64) {
        if let Some(rem) = &mut self.remaining {
            *rem = rem.saturating_sub(units);
        }
    }

    /// Checks both limits.  The work check is deterministic; the deadline
    /// check reads the wall clock and is reported first (a request that is
    /// both out of time and out of budget degrades for the deadline).
    pub fn check(&self) -> Result<(), Exhausted> {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Exhausted::Deadline);
            }
        }
        if self.remaining == Some(0) {
            return Err(Exhausted::Work);
        }
        Ok(())
    }

    /// True when at least `units` of work remain (always true when
    /// unlimited).  Rungs gate on their deterministic cost estimate before
    /// running, so a too-small budget degrades *before* burning the work.
    pub fn affords(&self, units: u64) -> bool {
        self.remaining.is_none_or(|rem| rem >= units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_budget_is_deterministic() {
        let mut b = Budget::new(Instant::now(), None, Some(100));
        assert!(b.check().is_ok());
        assert!(b.affords(100));
        assert!(!b.affords(101));
        b.charge(60);
        assert!(b.affords(40));
        assert!(!b.affords(41));
        b.charge(1_000);
        assert_eq!(b.check(), Err(Exhausted::Work));
    }

    #[test]
    fn zero_deadline_expires_at_pickup() {
        let b = Budget::new(Instant::now(), Some(0), None);
        assert_eq!(b.check(), Err(Exhausted::Deadline));
        assert_eq!(Exhausted::Deadline.reason(), "deadline");
        assert_eq!(Exhausted::Work.reason(), "budget");
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        let mut b = Budget::unlimited();
        b.charge(u64::MAX);
        assert!(b.check().is_ok());
        assert!(b.affords(u64::MAX));
    }
}
