//! Bounded LRU caches for the server's hot state.
//!
//! Long-lived servers must cap memory: prepared chordal sessions (clique
//! trees) and interned module corpora are cached per graph/seed
//! fingerprint in a strict least-recently-used structure with a fixed
//! capacity.  Eviction affects only *latency*, never *answers* — every
//! cached value is a pure function of its key — so worker scheduling (and
//! therefore hit/miss patterns) cannot leak into response bytes.

use coalesce_graph::Graph;
use std::collections::HashMap;
use std::hash::Hash;

/// A small bounded LRU map.
///
/// Operations are O(capacity) in the worst case (the recency list is a
/// plain vector); capacities here are double digits, where that beats
/// pointer-chasing.
#[derive(Debug)]
pub struct Lru<K: Eq + Hash + Clone, V> {
    capacity: usize,
    map: HashMap<K, V>,
    /// Keys from least- to most-recently used.
    recency: Vec<K>,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// Creates a cache bounded to `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Lru {
            capacity,
            map: HashMap::with_capacity(capacity),
            recency: Vec::with_capacity(capacity),
        }
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if !self.map.contains_key(key) {
            return None;
        }
        self.touch(key);
        self.map.get(key)
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.map.insert(key.clone(), value).is_some() {
            self.touch(&key);
            return;
        }
        if self.recency.len() == self.capacity {
            let evicted = self.recency.remove(0);
            self.map.remove(&evicted);
        }
        self.recency.push(key);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn touch(&mut self, key: &K) {
        if let Some(pos) = self.recency.iter().position(|k| k == key) {
            let k = self.recency.remove(pos);
            self.recency.push(k);
        }
    }
}

/// A structural fingerprint of a graph (FNV-1a over the vertex count and
/// the sorted edge list): the key prepared-chordal sessions are cached
/// under.  Not cryptographic — a collision would at worst serve a wrong
/// *cached* clique tree, so the engine stores the `(capacity, num_edges)`
/// pair alongside and rebuilds on mismatch.
pub fn graph_fingerprint(g: &Graph) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(g.capacity() as u64);
    for (u, v) in g.edges() {
        mix(u.index() as u64);
        mix(v.index() as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalesce_graph::VertexId;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = Lru::new(2);
        lru.insert(1, "a");
        lru.insert(2, "b");
        assert_eq!(lru.get(&1), Some(&"a")); // 1 becomes most recent
        lru.insert(3, "c"); // evicts 2
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(&"a"));
        assert_eq!(lru.get(&3), Some(&"c"));
    }

    #[test]
    fn reinsert_refreshes_instead_of_growing() {
        let mut lru = Lru::new(2);
        lru.insert(1, "a");
        lru.insert(1, "b");
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(&1), Some(&"b"));
        assert!(!lru.is_empty());
    }

    #[test]
    fn fingerprints_distinguish_structure() {
        let v = VertexId::new;
        let a = Graph::with_edges(3, [(v(0), v(1))]);
        let b = Graph::with_edges(3, [(v(0), v(2))]);
        let c = Graph::with_edges(4, [(v(0), v(1))]);
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&a.clone()));
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&b));
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&c));
    }
}
