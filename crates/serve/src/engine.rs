//! The request engine: parses, validates, and walks the declared
//! degradation ladder under the request's deadline + work budget.
//!
//! # The ladder
//!
//! | rung         | graph requests                    | CFG / module requests |
//! |--------------|-----------------------------------|-----------------------|
//! | `exact`      | exact search ([`ExactSolver`])    | Belady MIN spiller    |
//! | `chordal_irc`| clique-tree session + IRC         | pressure-greedy spill |
//! | `greedy`     | DSATUR / spill-everywhere         | spill-everywhere      |
//!
//! Each rung has a *deterministic* cost estimate; a rung runs only when
//! the remaining work budget affords the estimate and the deadline has not
//! expired, otherwise the engine falls to the next rung.  The bottom rung
//! always answers (the floor is linear-time), so work-budget exhaustion
//! degrades but never errors; only a deadline that is already expired at
//! pickup produces `deadline_exceeded`.  Rungs skipped by *size gates*
//! (e.g. exact search on a graph too large to ever finish) do not count
//! as degradation — degradation is strictly "the budget/deadline forced a
//! lower rung than this request was eligible for".
//!
//! Determinism: everything the ladder decides on — parses, structural
//! sizes, collected counters of uncached work — is a pure function of the
//! request, so for a fixed request line the chosen rung and every response
//! byte are identical across runs, worker counts, and cache states.
//! Caches (see [`crate::cache`]) are charged by *structural proxy* rather
//! than measured counters, so a cache hit cannot shift a later budget
//! decision.

use crate::budget::{Budget, Exhausted};
use crate::cache::{graph_fingerprint, Lru};
use crate::protocol::{ErrorCode, Request, RequestKind, Response, Rung};
use coalesce_core::{allocate, Affinity, AffinityGraph, PreparedChordal};
use coalesce_gen::cfg::{PressureLevel, ShapeProfile};
use coalesce_gen::module::{module_specs, FunctionSpec, ModuleParams};
use coalesce_graph::chordal::chordal_coloring;
use coalesce_graph::coloring::dsatur;
use coalesce_graph::format::{
    from_challenge_limited, from_dimacs_limited, ParseError, ParseErrorKind, ParseLimits,
};
use coalesce_graph::{ExactSolver, Graph};
use coalesce_ir::liveness::Liveness;
use coalesce_ir::spill::{spill_costs, SpillerKind};
use coalesce_ir::Function;
use coalesce_stats::json::Json;
use coalesce_verify::VerifyLevel;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Engine policy knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Size caps applied to inline DIMACS/challenge instances.
    pub parse_limits: ParseLimits,
    /// Exact-rung size gate: maximum vertices.
    pub exact_max_vertices: usize,
    /// Exact-rung size gate: maximum edges.
    pub exact_max_edges: usize,
    /// Work budget applied when a request does not carry one
    /// (`None` = unlimited).
    pub default_budget: Option<u64>,
    /// Re-verify answers before responding (`boundaries` or stricter).
    pub verify: VerifyLevel,
    /// Capacity of the prepared-chordal session LRU.
    pub session_capacity: usize,
    /// Capacity of the interned module-corpus LRU.
    pub module_capacity: usize,
    /// Maximum `count` of a `module_slice` request.
    pub max_slice: usize,
    /// Honour `panic` requests (chaos testing only).
    pub chaos: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            // Untrusted inline instances get much stricter caps than the
            // trusted-corpus defaults in `coalesce-graph`.
            parse_limits: ParseLimits {
                max_vertices: 100_000,
                max_edges: 2_000_000,
                max_affinities: 200_000,
            },
            exact_max_vertices: 48,
            exact_max_edges: 1_024,
            default_budget: None,
            verify: VerifyLevel::Off,
            session_capacity: 64,
            module_capacity: 8,
            max_slice: 64,
            chaos: false,
        }
    }
}

/// A cached prepared-chordal session: the structural sizes double-check
/// the (non-cryptographic) fingerprint; `prepared` is `None` for graphs
/// that turned out not to be chordal (negative results are worth caching
/// too).
struct Session {
    vertices: usize,
    edges: usize,
    prepared: Option<Arc<PreparedChordal>>,
}

/// The shared request engine: configuration plus the bounded hot-state
/// caches.  One engine is shared (via `Arc`) by every worker.
pub struct Engine {
    config: EngineConfig,
    sessions: Mutex<Lru<u64, Session>>,
    modules: Mutex<Lru<u64, Arc<Vec<FunctionSpec>>>>,
}

impl Engine {
    /// Creates an engine.
    pub fn new(config: EngineConfig) -> Self {
        let sessions = Mutex::new(Lru::new(config.session_capacity));
        let modules = Mutex::new(Lru::new(config.module_capacity));
        Engine {
            config,
            sessions,
            modules,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Serves one parsed request.  `now` is the pickup instant deadlines
    /// count from.
    ///
    /// This may panic only via the chaos `panic` kind or a genuine bug in
    /// the passes — the worker loop wraps it in `catch_unwind` either way.
    pub fn execute(&self, req: &Request, now: Instant) -> Response {
        let mut budget = Budget::new(
            now,
            req.deadline_ms,
            req.budget.or(self.config.default_budget),
        );
        // A deadline that has already expired at pickup: nothing can be
        // answered in time, not even the floor rung.
        if let Err(Exhausted::Deadline) = budget.check() {
            return Response::Error {
                id: Some(req.id),
                code: ErrorCode::DeadlineExceeded,
                message: "deadline expired before processing began".to_string(),
            };
        }
        match &req.kind {
            RequestKind::Dimacs { text } => self.serve_dimacs(req, text, &mut budget),
            RequestKind::Challenge { text } => self.serve_challenge(req, text, &mut budget),
            RequestKind::Cfg {
                profile,
                pressure,
                seed,
            } => self.serve_cfg(req, *profile, *pressure, *seed, &mut budget),
            RequestKind::ModuleSlice { seed, start, count } => {
                self.serve_module_slice(req, *seed, *start, *count, &mut budget)
            }
            RequestKind::Panic => {
                assert!(
                    !self.config.chaos,
                    "chaos request {}: deliberate worker panic",
                    req.id
                );
                Response::Error {
                    id: Some(req.id),
                    code: ErrorCode::Unsupported,
                    message: "`panic` requests require --chaos".to_string(),
                }
            }
        }
    }

    fn parse_error_response(id: u64, e: &ParseError) -> Response {
        Response::Error {
            id: Some(id),
            code: match e.kind {
                ParseErrorKind::TooLarge => ErrorCode::TooLarge,
                ParseErrorKind::Malformed => ErrorCode::ParseError,
            },
            message: e.to_string(),
        }
    }

    /// Looks up (or prepares and caches) the chordal session for `g`.
    /// Deterministic in the *answer*: eviction or hits change latency only.
    fn chordal_session(&self, g: &Graph) -> Option<Arc<PreparedChordal>> {
        let key = graph_fingerprint(g);
        if let Ok(mut cache) = self.sessions.lock() {
            if let Some(s) = cache.get(&key) {
                if s.vertices == g.capacity() && s.edges == g.num_edges() {
                    return s.prepared.clone();
                }
                // Fingerprint collision: fall through and rebuild.
            }
        }
        let prepared = PreparedChordal::prepare(g).map(Arc::new);
        if let Ok(mut cache) = self.sessions.lock() {
            cache.insert(
                key,
                Session {
                    vertices: g.capacity(),
                    edges: g.num_edges(),
                    prepared: prepared.clone(),
                },
            );
        }
        prepared
    }

    fn serve_dimacs(&self, req: &Request, text: &str, budget: &mut Budget) -> Response {
        let graph = match from_dimacs_limited(text, &self.config.parse_limits) {
            Ok(g) => g,
            Err(e) => return Self::parse_error_response(req.id, &e),
        };
        let n = graph.num_vertices();
        let m = graph.num_edges();
        // Registers beyond n never change a coloring answer; clamping here
        // keeps hostile `k` values from sizing allocations.
        let k = req.k.map(|k| k.clamp(1, n.max(1)));
        let exact_eligible =
            n <= self.config.exact_max_vertices && m <= self.config.exact_max_edges;
        let exact_est = (n as u64) * (m as u64) + n as u64 + 1;
        let chordal_est = (n + m + 1) as u64;

        let mut degrade: Option<Exhausted> = None;
        if exact_eligible {
            match rung_allowed(budget, exact_est) {
                Ok(()) => {
                    let mut solver = ExactSolver::new();
                    let (payload, verified) = exact_graph_payload(&mut solver, &graph, k);
                    budget.charge(solver.stats().nodes_expanded + n as u64 + 1);
                    return Self::ok(req, "dimacs", Rung::Exact, None, verified, payload);
                }
                Err(e) => degrade = Some(e),
            }
        }
        match rung_allowed(budget, chordal_est) {
            Ok(()) => {
                if let Some(session) = self.chordal_session(&graph) {
                    budget.charge(chordal_est);
                    let omega = session.omega();
                    let coloring = chordal_coloring(&graph);
                    let colors = coloring.as_ref().map_or(omega, |c| c.num_colors());
                    let verified = self.verify_coloring(&graph, coloring.as_ref(), None);
                    let mut payload = graph_payload(&graph);
                    payload.push(("chordal".to_string(), Json::Bool(true)));
                    payload.push(("omega".to_string(), Json::from(omega)));
                    payload.push(("colors".to_string(), Json::from(colors)));
                    if let Some(k) = k {
                        payload.push(("k".to_string(), Json::from(k)));
                        payload.push(("colorable".to_string(), Json::Bool(omega <= k)));
                    }
                    let reason = degrade_reason(degrade, exact_eligible);
                    return Self::ok(req, "dimacs", Rung::ChordalIrc, reason, verified, payload);
                }
                // Not chordal: the rung cannot answer; this is structure,
                // not degradation.
                budget.charge(chordal_est);
            }
            Err(e) => degrade = Some(degrade.unwrap_or(e)),
        }
        // Floor: DSATUR always answers.
        let coloring = dsatur(&graph);
        budget.charge(n as u64 + 1);
        let colors = coloring.num_colors();
        let verified = self.verify_coloring(&graph, Some(&coloring), None);
        let mut payload = graph_payload(&graph);
        payload.push(("chordal".to_string(), Json::Bool(false)));
        payload.push(("colors".to_string(), Json::from(colors)));
        if let Some(k) = k {
            payload.push(("k".to_string(), Json::from(k)));
            payload.push(("colorable".to_string(), Json::Bool(colors <= k)));
        }
        let reason = degrade_reason(degrade, true);
        Self::ok(req, "dimacs", Rung::Greedy, reason, verified, payload)
    }

    fn serve_challenge(&self, req: &Request, text: &str, budget: &mut Budget) -> Response {
        let file = match from_challenge_limited(text, &self.config.parse_limits) {
            Ok(f) => f,
            Err(e) => return Self::parse_error_response(req.id, &e),
        };
        // `AffinityGraph::new` asserts this invariant; on the serving path
        // it must be a typed error, not a panic.
        for &(u, v, _) in &file.affinities {
            if file.graph.has_edge(u, v) {
                return Response::Error {
                    id: Some(req.id),
                    code: ErrorCode::InvalidRequest,
                    message: format!(
                        "affinity between interfering vertices {} and {}",
                        u.index() + 1,
                        v.index() + 1
                    ),
                };
            }
        }
        let n = file.graph.num_vertices();
        let m = file.graph.num_edges();
        let a = file.affinities.len();
        let k = req
            .k
            .or(file.registers)
            .unwrap_or_else(|| file.graph.max_degree() + 1)
            .clamp(1, n.max(1));
        let total_weight = file.total_affinity_weight();
        let affinities: Vec<Affinity> = file
            .affinities
            .iter()
            .map(|&(u, v, w)| Affinity::weighted(u, v, w))
            .collect();
        let exact_eligible =
            n <= self.config.exact_max_vertices && m <= self.config.exact_max_edges && a <= 256;
        let exact_est = (n as u64) * (m as u64) + a as u64 + 1;
        let irc_est = (n + m + a + 1) as u64;

        let base_payload = |graph: &Graph| {
            vec![
                ("vertices".to_string(), Json::from(graph.num_vertices())),
                ("edges".to_string(), Json::from(graph.num_edges())),
                ("affinities".to_string(), Json::from(a)),
                ("total_weight".to_string(), Json::from(total_weight)),
                ("k".to_string(), Json::from(k)),
            ]
        };

        let mut degrade: Option<Exhausted> = None;
        if exact_eligible {
            match rung_allowed(budget, exact_est) {
                Ok(()) => {
                    let mut solver = ExactSolver::new();
                    let colorable = solver.is_k_colorable(&file.graph, k);
                    budget.charge(solver.stats().nodes_expanded + 1);
                    let ag = AffinityGraph::new(file.graph.clone(), affinities);
                    let irc = allocate(&ag, k);
                    budget.charge(irc_est);
                    let verified = self.verify_irc(&ag, k, &irc);
                    let mut payload = base_payload(&ag.graph);
                    payload.push(("colorable".to_string(), Json::Bool(colorable)));
                    payload.push(("irc_spills".to_string(), Json::from(irc.spilled.len())));
                    payload.push((
                        "coalesced_weight".to_string(),
                        Json::from(irc.stats.coalesced_weight),
                    ));
                    return Self::ok(req, "challenge", Rung::Exact, None, verified, payload);
                }
                Err(e) => degrade = Some(e),
            }
        }
        match rung_allowed(budget, irc_est) {
            Ok(()) => {
                let session = self.chordal_session(&file.graph);
                budget.charge((n + m + 1) as u64);
                let ag = AffinityGraph::new(file.graph.clone(), affinities);
                let irc = allocate(&ag, k);
                budget.charge(irc_est);
                let verified = self.verify_irc(&ag, k, &irc);
                let mut payload = base_payload(&ag.graph);
                payload.push(("chordal".to_string(), Json::Bool(session.is_some())));
                if let Some(session) = &session {
                    payload.push(("omega".to_string(), Json::from(session.omega())));
                    payload.push(("colorable".to_string(), Json::Bool(session.omega() <= k)));
                }
                payload.push(("irc_spills".to_string(), Json::from(irc.spilled.len())));
                payload.push((
                    "coalesced_weight".to_string(),
                    Json::from(irc.stats.coalesced_weight),
                ));
                let reason = degrade_reason(degrade, exact_eligible);
                return Self::ok(
                    req,
                    "challenge",
                    Rung::ChordalIrc,
                    reason,
                    verified,
                    payload,
                );
            }
            Err(e) => degrade = Some(degrade.unwrap_or(e)),
        }
        // Floor: DSATUR; vertices pushed past `k` are the spill estimate.
        let coloring = dsatur(&file.graph);
        budget.charge(n as u64 + 1);
        let spilled = (0..file.graph.capacity())
            .filter(|&i| {
                coloring
                    .color_of(coalesce_graph::VertexId::new(i))
                    .is_some_and(|c| c >= k)
            })
            .count();
        let verified = self.verify_coloring(&file.graph, Some(&coloring), None);
        let mut payload = base_payload(&file.graph);
        payload.push(("colors".to_string(), Json::from(coloring.num_colors())));
        payload.push(("spilled_estimate".to_string(), Json::from(spilled)));
        let reason = degrade_reason(degrade, true);
        Self::ok(req, "challenge", Rung::Greedy, reason, verified, payload)
    }

    fn serve_cfg(
        &self,
        req: &Request,
        profile: ShapeProfile,
        pressure: PressureLevel,
        seed: u64,
        budget: &mut Budget,
    ) -> Response {
        let params = profile.params(pressure.pressure());
        let function = coalesce_gen::cfg::generate(&params, &mut coalesce_gen::rng(seed));
        let (rung, reason, outcome) = self.spill_ladder(&function, req.k, budget);
        let mut payload = vec![
            ("profile".to_string(), Json::from(profile.name())),
            ("pressure".to_string(), Json::from(pressure.name())),
            ("seed".to_string(), Json::UInt(seed)),
        ];
        payload.extend(outcome.payload());
        Self::ok(req, "cfg", rung, reason, outcome.verified, payload)
    }

    fn serve_module_slice(
        &self,
        req: &Request,
        seed: u64,
        start: usize,
        count: usize,
        budget: &mut Budget,
    ) -> Response {
        let params = ModuleParams::default();
        if count == 0 || count > self.config.max_slice {
            return Response::Error {
                id: Some(req.id),
                code: ErrorCode::InvalidRequest,
                message: format!("count must be in 1..={}", self.config.max_slice),
            };
        }
        if start.saturating_add(count) > params.functions {
            return Response::Error {
                id: Some(req.id),
                code: ErrorCode::InvalidRequest,
                message: format!(
                    "slice {start}..{} out of range for {} functions",
                    start.saturating_add(count),
                    params.functions
                ),
            };
        }
        let specs = self.module_corpus(seed, params);
        budget.charge(count as u64);
        let mut worst_rung = Rung::Exact;
        let mut reason: Option<&'static str> = None;
        let mut spilled = 0usize;
        let mut reloads = 0usize;
        let mut spill_weight = 0u64;
        let mut maxlive_max = 0usize;
        let mut verified = self.verify_bool(true);
        for spec in &specs[start..start + count] {
            let function = spec.generate();
            let (rung, fn_reason, outcome) = self.spill_ladder(&function, req.k, budget);
            worst_rung = worst_rung.max(rung);
            reason = reason.or(fn_reason);
            spilled += outcome.spilled;
            reloads += outcome.reloads;
            spill_weight += outcome.spill_weight;
            maxlive_max = maxlive_max.max(outcome.maxlive);
            if let (Some(v), Some(f)) = (&mut verified, outcome.verified) {
                *v &= f;
            }
        }
        let payload = vec![
            ("seed".to_string(), Json::UInt(seed)),
            ("start".to_string(), Json::from(start)),
            ("functions".to_string(), Json::from(count)),
            ("maxlive_max".to_string(), Json::from(maxlive_max)),
            ("spilled".to_string(), Json::from(spilled)),
            ("reloads".to_string(), Json::from(reloads)),
            ("spill_weight".to_string(), Json::from(spill_weight)),
        ];
        Self::ok(req, "module_slice", worst_rung, reason, verified, payload)
    }

    /// Looks up (or generates and caches) the interned spec corpus of a
    /// module seed.
    fn module_corpus(&self, seed: u64, params: ModuleParams) -> Arc<Vec<FunctionSpec>> {
        if let Ok(mut cache) = self.modules.lock() {
            if let Some(specs) = cache.get(&seed) {
                return Arc::clone(specs);
            }
        }
        let specs = Arc::new(module_specs(&params, seed));
        if let Ok(mut cache) = self.modules.lock() {
            cache.insert(seed, Arc::clone(&specs));
        }
        specs
    }

    /// Runs the spiller ladder on one function.  Rung mapping: Belady MIN
    /// (exact), pressure-greedy (chordal/IRC tier), spill-everywhere
    /// (floor — linear, always runs).
    fn spill_ladder(
        &self,
        function: &Function,
        k: Option<usize>,
        budget: &mut Budget,
    ) -> (Rung, Option<&'static str>, SpillOutcome) {
        let instrs = function.num_instrs_total() as u64;
        let maxlive = Liveness::compute(function).maxlive_precise(function);
        let k = k.map_or_else(|| (maxlive / 2).max(3), |k| k.clamp(2, maxlive.max(2)));
        let ladder = [
            (Rung::Exact, SpillerKind::Belady, instrs * 4 + 1),
            (
                Rung::ChordalIrc,
                SpillerKind::PressureGreedy,
                instrs * 2 + 1,
            ),
        ];
        let mut degrade: Option<Exhausted> = None;
        for (rung, spiller, estimate) in ladder {
            match rung_allowed(budget, estimate) {
                Ok(()) => {
                    let outcome = self.run_spiller(function, spiller, k, maxlive, budget);
                    return (rung, degrade_reason(degrade, true), outcome);
                }
                Err(e) => degrade = Some(degrade.unwrap_or(e)),
            }
        }
        let outcome = self.run_spiller(function, SpillerKind::Everywhere, k, maxlive, budget);
        (Rung::Greedy, degrade_reason(degrade, true), outcome)
    }

    fn run_spiller(
        &self,
        function: &Function,
        spiller: SpillerKind,
        k: usize,
        maxlive: usize,
        budget: &mut Budget,
    ) -> SpillOutcome {
        let (outcome, counters) = coalesce_stats::collect(|| {
            let costs = spill_costs(function);
            let mut spilled_f = function.clone();
            let result = spiller.run(&mut spilled_f, k);
            let spill_weight = result
                .spilled
                .iter()
                .map(|v| costs.get(v.index()).copied().unwrap_or(0))
                .sum::<u64>();
            let maxlive_after = Liveness::compute(&spilled_f).maxlive_precise(&spilled_f);
            // Spillers chase `Maxlive <= k` but per-instruction operand
            // pressure can put a floor above `k` (E17's auditor makes the
            // same allowance), so the boundary check is "spilling never
            // *worsens* pressure" — recomputed independently of the
            // spiller's own claim.
            SpillOutcome {
                function: (function.num_blocks(), function.num_vars()),
                maxlive,
                k,
                spilled: result.spilled.len(),
                reloads: result.reloads,
                spill_weight,
                maxlive_after,
                verified: self.verify_bool(maxlive_after <= maxlive.max(k)),
            }
        });
        // Uncached per-request work: the measured counters are
        // deterministic, so charge exactly what the spiller reported
        // (`spill.victims`, liveness iterations, ...).
        budget.charge(counters.total().max(1));
        outcome
    }

    /// `Some(outcome)` at `boundaries` and above, `None` when verification
    /// is off.
    fn verify_bool(&self, ok: bool) -> Option<bool> {
        self.config.verify.is_on().then_some(ok)
    }

    /// Verifies an IRC allocation against the *original* graph: no
    /// interfering pair shares a color, and every non-spilled vertex got
    /// a color below `k`.  Colors are read through the class
    /// representatives (`IrcResult::color_of`), since the raw coloring
    /// only assigns representatives.
    fn verify_irc(
        &self,
        ag: &AffinityGraph,
        k: usize,
        irc: &coalesce_core::IrcResult,
    ) -> Option<bool> {
        if !self.config.verify.is_on() {
            return None;
        }
        let proper = ag
            .graph
            .edges()
            .all(|(a, b)| match (irc.color_of(a), irc.color_of(b)) {
                (Some(ca), Some(cb)) => ca != cb,
                _ => true,
            });
        let complete = ag.graph.vertices().all(|v| {
            irc.spilled.binary_search(&v).is_ok() || irc.color_of(v).is_some_and(|c| c < k)
        });
        Some(proper && complete)
    }

    /// Verifies a coloring answer: proper, and within `bound` colors when
    /// a bound is claimed.
    fn verify_coloring(
        &self,
        graph: &Graph,
        coloring: Option<&coalesce_graph::Coloring>,
        bound: Option<usize>,
    ) -> Option<bool> {
        if !self.config.verify.is_on() {
            return None;
        }
        let ok = coloring
            .is_some_and(|c| c.is_proper(graph) && bound.is_none_or(|b| c.num_colors() <= b));
        Some(ok)
    }

    fn ok(
        req: &Request,
        kind: &'static str,
        rung: Rung,
        degrade_reason: Option<&'static str>,
        verified: Option<bool>,
        payload: Vec<(String, Json)>,
    ) -> Response {
        Response::Ok {
            id: req.id,
            kind,
            rung,
            degraded: degrade_reason.is_some(),
            degrade_reason,
            verified,
            payload,
        }
    }
}

/// Outcome of one spiller run, shared by the `cfg` and `module_slice`
/// paths.
struct SpillOutcome {
    function: (usize, usize),
    maxlive: usize,
    k: usize,
    spilled: usize,
    reloads: usize,
    spill_weight: u64,
    maxlive_after: usize,
    verified: Option<bool>,
}

impl SpillOutcome {
    fn payload(&self) -> Vec<(String, Json)> {
        vec![
            ("blocks".to_string(), Json::from(self.function.0)),
            ("vars".to_string(), Json::from(self.function.1)),
            ("maxlive".to_string(), Json::from(self.maxlive)),
            ("k".to_string(), Json::from(self.k)),
            ("spilled".to_string(), Json::from(self.spilled)),
            ("reloads".to_string(), Json::from(self.reloads)),
            ("spill_weight".to_string(), Json::from(self.spill_weight)),
            ("maxlive_after".to_string(), Json::from(self.maxlive_after)),
        ]
    }
}

/// A rung may run when the deadline has not expired and the budget
/// affords its deterministic cost estimate.
fn rung_allowed(budget: &Budget, estimate: u64) -> Result<(), Exhausted> {
    budget.check()?;
    if budget.affords(estimate) {
        Ok(())
    } else {
        Err(Exhausted::Work)
    }
}

/// Degradation is only reported when the request was eligible for a
/// better rung and a limit (not a size gate) pushed it down.
fn degrade_reason(degrade: Option<Exhausted>, eligible: bool) -> Option<&'static str> {
    if eligible {
        degrade.map(Exhausted::reason)
    } else {
        None
    }
}

/// The exact graph rung: with a `k`, an exact `k`-coloring (witnessed);
/// without one, the chromatic number.
fn exact_graph_payload(
    solver: &mut ExactSolver,
    graph: &Graph,
    k: Option<usize>,
) -> (Vec<(String, Json)>, Option<bool>) {
    let mut payload = graph_payload(graph);
    match k {
        Some(k) => {
            let witness = solver.k_coloring(graph, k, &[]);
            let colorable = witness.is_some();
            payload.push(("k".to_string(), Json::from(k)));
            payload.push(("colorable".to_string(), Json::Bool(colorable)));
            if let Some(c) = &witness {
                payload.push(("colors".to_string(), Json::from(c.num_colors())));
            }
            let verified = witness
                .as_ref()
                .map(|c| c.is_proper(graph) && c.num_colors() <= k);
            (payload, verified)
        }
        None => {
            let chi = solver.chromatic_number(graph);
            payload.push(("chromatic_number".to_string(), Json::from(chi)));
            payload.push(("colors".to_string(), Json::from(chi)));
            (payload, None)
        }
    }
}

fn graph_payload(graph: &Graph) -> Vec<(String, Json)> {
    vec![
        ("vertices".to_string(), Json::from(graph.num_vertices())),
        ("edges".to_string(), Json::from(graph.num_edges())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    fn run(engine: &Engine, line: &str) -> Response {
        let req = parse_request(line).expect("test request parses");
        engine.execute(&req, Instant::now())
    }

    fn ok_fields(resp: &Response) -> (Rung, bool, Option<&'static str>) {
        match resp {
            Response::Ok {
                rung,
                degraded,
                degrade_reason,
                ..
            } => (*rung, *degraded, *degrade_reason),
            other => panic!("expected ok, got {other:?}"),
        }
    }

    /// A chordal 4-path as DIMACS text, small enough for the exact rung.
    const PATH4: &str = "p edge 4 3\\ne 1 2\\ne 2 3\\ne 3 4\\n";

    #[test]
    fn exact_rung_answers_small_graphs() {
        let engine = Engine::new(EngineConfig::default());
        let resp = run(
            &engine,
            &format!(r#"{{"id":1,"kind":"dimacs","text":"{PATH4}","k":2}}"#),
        );
        let (rung, degraded, _) = ok_fields(&resp);
        assert_eq!(rung, Rung::Exact);
        assert!(!degraded);
        let json = resp.to_json();
        assert_eq!(json.get("colorable").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn tiny_budget_degrades_to_the_floor_deterministically() {
        let engine = Engine::new(EngineConfig::default());
        let line = format!(r#"{{"id":2,"kind":"dimacs","text":"{PATH4}","budget":2}}"#);
        let first = run(&engine, &line);
        let (rung, degraded, reason) = ok_fields(&first);
        assert_eq!(rung, Rung::Greedy);
        assert!(degraded);
        assert_eq!(reason, Some("budget"));
        // Same request, same bytes — cache warmth must not matter.
        for _ in 0..3 {
            assert_eq!(run(&engine, &line), first);
        }
    }

    #[test]
    fn zero_deadline_is_a_deterministic_deadline_exceeded() {
        let engine = Engine::new(EngineConfig::default());
        let resp = run(
            &engine,
            &format!(r#"{{"id":3,"kind":"dimacs","text":"{PATH4}","deadline_ms":0}}"#),
        );
        match resp {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::DeadlineExceeded),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn interfering_affinity_is_invalid_request_not_a_panic() {
        let engine = Engine::new(EngineConfig::default());
        let resp = run(
            &engine,
            r#"{"id":4,"kind":"challenge","text":"p coalesce 2 1 1\ne 1 2\na 1 2\n"}"#,
        );
        match resp {
            Response::Error { code, message, .. } => {
                assert_eq!(code, ErrorCode::InvalidRequest);
                assert!(message.contains("interfering"), "{message}");
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_instances_are_too_large() {
        let engine = Engine::new(EngineConfig::default());
        let resp = run(
            &engine,
            r#"{"id":5,"kind":"dimacs","text":"p edge 999999999999 0\n"}"#,
        );
        match resp {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::TooLarge),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn cfg_and_module_slice_answer_with_spill_results() {
        let config = EngineConfig {
            verify: VerifyLevel::Boundaries,
            ..EngineConfig::default()
        };
        let engine = Engine::new(config);
        let resp = run(
            &engine,
            r#"{"id":6,"kind":"cfg","profile":"fp-loopnest","pressure":"high","seed":7}"#,
        );
        let (rung, degraded, _) = ok_fields(&resp);
        assert_eq!(
            rung,
            Rung::Exact,
            "unlimited budget answers at the top rung"
        );
        assert!(!degraded);
        let json = resp.to_json();
        assert_eq!(json.get("verified").and_then(Json::as_bool), Some(true));
        assert!(json.get("maxlive_after").and_then(Json::as_u64).is_some());

        let resp = run(
            &engine,
            r#"{"id":7,"kind":"module_slice","seed":42,"start":0,"count":3,"budget":40}"#,
        );
        let (rung, degraded, reason) = ok_fields(&resp);
        assert_eq!(
            rung,
            Rung::Greedy,
            "a 40-unit budget cannot afford the upper rungs"
        );
        assert!(degraded);
        assert_eq!(reason, Some("budget"));
        let json = resp.to_json();
        assert_eq!(json.get("functions").and_then(Json::as_u64), Some(3));
        assert_eq!(json.get("verified").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn module_slice_bounds_are_validated() {
        let engine = Engine::new(EngineConfig::default());
        for bad in [
            r#"{"id":8,"kind":"module_slice","seed":1,"start":999,"count":5}"#,
            r#"{"id":9,"kind":"module_slice","seed":1,"start":0,"count":0}"#,
            r#"{"id":10,"kind":"module_slice","seed":1,"start":0,"count":1000}"#,
        ] {
            match run(&engine, bad) {
                Response::Error { code, .. } => assert_eq!(code, ErrorCode::InvalidRequest),
                other => panic!("expected error for {bad}, got {other:?}"),
            }
        }
    }

    #[test]
    fn panic_kind_is_unsupported_outside_chaos() {
        let engine = Engine::new(EngineConfig::default());
        match run(&engine, r#"{"id":11,"kind":"panic"}"#) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Unsupported),
            other => panic!("expected error, got {other:?}"),
        }
    }
}
