//! Allocation as a service: a hardened front door over the coalescing
//! pipeline.
//!
//! The `serve` binary speaks a JSONL request/response protocol on
//! stdin/stdout (or an optional std-TCP listener): one request object per
//! line, one response object per line (see [`protocol`]).  The serving
//! path is built for hostile, long-lived use:
//!
//! * **bounded queue + explicit backpressure** — a full queue answers
//!   `overloaded` with a `retry_after_ms` hint instead of buffering
//!   ([`server`]);
//! * **deadlines and deterministic work budgets** per request
//!   ([`budget`]), enforced cooperatively through the same counters
//!   `coalesce-stats` already collects;
//! * **graceful degradation** down a declared ladder — exact →
//!   chordal/IRC → greedy — with every response tagged by the rung that
//!   answered and why it degraded ([`engine`]);
//! * **panic isolation** — a poisoned request is caught per-worker and
//!   answered with `internal_error` echoing the offending line for
//!   replay; the pool keeps serving;
//! * **bounded hot state** — prepared chordal sessions and interned
//!   module corpora in strict LRU caches ([`cache`]);
//! * optional **re-verification** of answers before they are sent
//!   (`--verify boundaries`).
//!
//! The E18 chaos soak (in `coalesce-bench`) replays a seeded mixed
//! workload with fault injection through this crate and asserts the
//! zero-crash invariant.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod budget;
pub mod cache;
pub mod engine;
pub mod protocol;
pub mod server;

pub use budget::{Budget, Exhausted};
pub use engine::{Engine, EngineConfig};
pub use protocol::{parse_request, ErrorCode, Request, RequestKind, Response, Rung};
pub use server::{Server, ServerConfig, ServiceSummary};
