//! The JSONL wire protocol: one request object per line in, one response
//! object per line out.
//!
//! # Requests
//!
//! ```json
//! {"id":1,"kind":"dimacs","text":"p edge 3 2\ne 1 2\ne 2 3\n","k":2}
//! {"id":2,"kind":"challenge","text":"p coalesce 4 2 1\n...","deadline_ms":50}
//! {"id":3,"kind":"cfg","profile":"fp-loopnest","pressure":"high","seed":7,"budget":5000}
//! {"id":4,"kind":"module_slice","seed":42,"start":10,"count":4}
//! ```
//!
//! `id` is echoed on the response.  `deadline_ms` is a wall-clock deadline
//! from the moment a worker picks the request up; `budget` is a
//! deterministic work budget in counter units (see [`crate::budget`]).
//! Both are optional; the server may impose defaults.
//!
//! # Responses
//!
//! Success: `{"id":N,"status":"ok","rung":"exact","degraded":false,...}`.
//! Failure: `{"id":N,"status":"error","code":"parse_error","message":"..."}`.
//! Queue-full backpressure: `{"id":N,"status":"overloaded","code":"overloaded",
//! "retry_after_ms":M}`.  A caught worker panic:
//! `{"id":N,"status":"internal_error","code":"internal_error","message":"...",
//! "request":"<the offending line, echoed for replay>"}`.

use coalesce_gen::cfg::{PressureLevel, ShapeProfile};
use coalesce_stats::json::Json;
use std::fmt;

/// Machine-readable error classes, mirrored as `code` fields on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line or an embedded instance text failed to parse.
    ParseError,
    /// The request parsed but is semantically invalid (unknown kind,
    /// missing fields, out-of-range slice, affinity between interfering
    /// vertices, ...).
    InvalidRequest,
    /// The instance declares sizes above the server's limits.
    TooLarge,
    /// The bounded request queue is full; retry after `retry_after_ms`.
    Overloaded,
    /// The wall-clock deadline expired before any ladder rung could
    /// produce an answer.
    DeadlineExceeded,
    /// A worker panicked while serving the request (caught; the pool
    /// keeps serving).
    InternalError,
    /// The request kind is recognised but disabled on this server (e.g.
    /// `panic` outside chaos mode).
    Unsupported,
}

impl ErrorCode {
    /// The stable wire identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::ParseError => "parse_error",
            ErrorCode::InvalidRequest => "invalid_request",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::InternalError => "internal_error",
            ErrorCode::Unsupported => "unsupported",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The rung of the degradation ladder that produced an answer, ordered
/// from most to least precise.
///
/// The three rungs follow the ladder declared in the experiment design:
/// *exact* (optimal search), *chordal/IRC* (the paper's polynomial chordal
/// machinery plus iterated-register-coalescing-style conservatism), and
/// *greedy* (pressure-greedy / spill-everywhere — always terminates, never
/// better, never wrong).  For CFG workloads the rungs map onto the rival
/// spiller zoo: Belady MIN, pressure-greedy, spill-everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// Optimal search (exact solver / Belady MIN spiller).
    Exact,
    /// Chordal machinery + IRC (pressure-greedy spiller for CFG work).
    ChordalIrc,
    /// Greedy coloring / spill-everywhere.
    Greedy,
}

impl Rung {
    /// All rungs, most precise first — the order the engine walks.
    pub const LADDER: [Rung; 3] = [Rung::Exact, Rung::ChordalIrc, Rung::Greedy];

    /// The stable wire identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            Rung::Exact => "exact",
            Rung::ChordalIrc => "chordal_irc",
            Rung::Greedy => "greedy",
        }
    }
}

/// What kind of work a request asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestKind {
    /// Color a DIMACS `.col` interference graph.
    Dimacs {
        /// The DIMACS text, inline.
        text: String,
    },
    /// Allocate a challenge-format coalescing instance.
    Challenge {
        /// The challenge text, inline.
        text: String,
    },
    /// Spill a generated CFG workload function.
    Cfg {
        /// Shape profile (see [`ShapeProfile::name`]).
        profile: ShapeProfile,
        /// Pressure level (`low` / `medium` / `high`).
        pressure: PressureLevel,
        /// Generation seed.
        seed: u64,
    },
    /// Spill a contiguous slice of the deterministic module workload.
    ModuleSlice {
        /// Module seed (the whole module derives from it).
        seed: u64,
        /// First function index.
        start: usize,
        /// Number of functions (bounded by the server).
        count: usize,
    },
    /// Deliberately panic in the worker — only honoured in chaos mode,
    /// where it exists to prove panic isolation end to end.
    Panic,
}

impl RequestKind {
    /// The stable wire identifier, used by reports to bucket outcomes.
    pub fn as_str(&self) -> &'static str {
        match self {
            RequestKind::Dimacs { .. } => "dimacs",
            RequestKind::Challenge { .. } => "challenge",
            RequestKind::Cfg { .. } => "cfg",
            RequestKind::ModuleSlice { .. } => "module_slice",
            RequestKind::Panic => "panic",
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen identifier, echoed on the response.
    pub id: u64,
    /// What to do.
    pub kind: RequestKind,
    /// Optional register target (`k`).  Defaults per kind.
    pub k: Option<usize>,
    /// Wall-clock deadline in milliseconds, measured from pickup.
    pub deadline_ms: Option<u64>,
    /// Deterministic work budget in counter units.
    pub budget: Option<u64>,
}

/// A request that failed to parse or validate, with the protocol error
/// code it maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// The id, when the line got far enough to reveal one.
    pub id: Option<u64>,
    /// The protocol error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    fn new(id: Option<u64>, code: ErrorCode, message: impl Into<String>) -> Self {
        RequestError {
            id,
            code,
            message: message.into(),
        }
    }
}

/// Hard cap on accepted request-line length (bytes).  Lines above it are
/// rejected as [`ErrorCode::TooLarge`] before JSON parsing, bounding both
/// parser work and echo-buffer memory per request.
pub const MAX_REQUEST_BYTES: usize = 4 << 20;

/// Parses one JSONL request line.
///
/// # Errors
///
/// Returns a [`RequestError`] carrying the protocol [`ErrorCode`] the
/// response must use; the `id` is recovered whenever the line parsed far
/// enough to contain one, so even malformed requests can usually be
/// correlated by the client.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    if line.len() > MAX_REQUEST_BYTES {
        return Err(RequestError::new(
            None,
            ErrorCode::TooLarge,
            format!(
                "request line of {} bytes exceeds {MAX_REQUEST_BYTES}",
                line.len()
            ),
        ));
    }
    let doc = Json::parse(line)
        .map_err(|e| RequestError::new(None, ErrorCode::ParseError, e.to_string()))?;
    let id = doc.get("id").and_then(Json::as_u64);
    if id.is_none() {
        return Err(RequestError::new(
            None,
            ErrorCode::InvalidRequest,
            "missing or non-integer `id`",
        ));
    }
    let kind_name = doc.get("kind").and_then(Json::as_str).ok_or_else(|| {
        RequestError::new(
            id,
            ErrorCode::InvalidRequest,
            "missing or non-string `kind`",
        )
    })?;
    let get_u64 = |key: &str| doc.get(key).and_then(Json::as_u64);
    let get_usize = |key: &str| get_u64(key).map(|v| usize::try_from(v).unwrap_or(usize::MAX));
    let get_text = |key: &str| -> Result<String, RequestError> {
        doc.get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| {
                RequestError::new(
                    id,
                    ErrorCode::InvalidRequest,
                    format!("missing or non-string `{key}`"),
                )
            })
    };
    let kind = match kind_name {
        "dimacs" => RequestKind::Dimacs {
            text: get_text("text")?,
        },
        "challenge" => RequestKind::Challenge {
            text: get_text("text")?,
        },
        "cfg" => {
            let profile_name = doc.get("profile").and_then(Json::as_str).unwrap_or("");
            let profile: ShapeProfile = profile_name.parse().map_err(|_| {
                RequestError::new(
                    id,
                    ErrorCode::InvalidRequest,
                    format!("unknown profile `{profile_name}`"),
                )
            })?;
            let pressure_name = doc.get("pressure").and_then(Json::as_str).unwrap_or("");
            let pressure = parse_pressure(pressure_name).ok_or_else(|| {
                RequestError::new(
                    id,
                    ErrorCode::InvalidRequest,
                    format!("unknown pressure `{pressure_name}`"),
                )
            })?;
            let seed = get_u64("seed").ok_or_else(|| {
                RequestError::new(id, ErrorCode::InvalidRequest, "missing `seed`")
            })?;
            RequestKind::Cfg {
                profile,
                pressure,
                seed,
            }
        }
        "module_slice" => {
            let seed = get_u64("seed").ok_or_else(|| {
                RequestError::new(id, ErrorCode::InvalidRequest, "missing `seed`")
            })?;
            let start = get_usize("start").ok_or_else(|| {
                RequestError::new(id, ErrorCode::InvalidRequest, "missing `start`")
            })?;
            let count = get_usize("count").ok_or_else(|| {
                RequestError::new(id, ErrorCode::InvalidRequest, "missing `count`")
            })?;
            RequestKind::ModuleSlice { seed, start, count }
        }
        "panic" => RequestKind::Panic,
        other => {
            return Err(RequestError::new(
                id,
                ErrorCode::InvalidRequest,
                format!("unknown kind `{other}`"),
            ));
        }
    };
    Ok(Request {
        id: id.unwrap_or(0),
        kind,
        k: get_usize("k"),
        deadline_ms: get_u64("deadline_ms"),
        budget: get_u64("budget"),
    })
}

/// `PressureLevel` has no `FromStr` upstream; the wire names mirror
/// [`PressureLevel::name`].
fn parse_pressure(name: &str) -> Option<PressureLevel> {
    PressureLevel::ALL.into_iter().find(|p| p.name() == name)
}

/// A response, exactly one per accepted line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request was answered by some ladder rung.
    Ok {
        /// Echoed request id.
        id: u64,
        /// Request kind (for report bucketing).
        kind: &'static str,
        /// The rung that produced the answer.
        rung: Rung,
        /// True when a budget/deadline pushed the answer below the best
        /// rung the request was eligible for.
        degraded: bool,
        /// Why the answer degraded (`"budget"` or `"deadline"`), if it did.
        degrade_reason: Option<&'static str>,
        /// `Some(outcome)` when the server re-verified the answer at
        /// `--verify boundaries` or stricter.
        verified: Option<bool>,
        /// Kind-specific result fields.
        payload: Vec<(String, Json)>,
    },
    /// The request was rejected or failed.
    Error {
        /// Echoed request id, when recoverable.
        id: Option<u64>,
        /// The protocol error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Backpressure: the bounded queue was full at submission.
    Overloaded {
        /// Echoed request id, when recoverable.
        id: Option<u64>,
        /// Suggested client retry delay.
        retry_after_ms: u64,
    },
    /// A worker panicked while serving this request; caught and isolated.
    InternalError {
        /// Echoed request id, when recoverable.
        id: Option<u64>,
        /// The panic payload, stringified.
        message: String,
        /// The offending request line, echoed verbatim for offline replay.
        request: String,
    },
}

impl Response {
    /// Builds the error response for a failed parse/validation.
    pub fn from_request_error(e: RequestError) -> Response {
        Response::Error {
            id: e.id,
            code: e.code,
            message: e.message,
        }
    }

    /// The `status` wire field.
    pub fn status(&self) -> &'static str {
        match self {
            Response::Ok { .. } => "ok",
            Response::Error { .. } => "error",
            Response::Overloaded { .. } => "overloaded",
            Response::InternalError { .. } => "internal_error",
        }
    }

    /// A stable label for outcome bucketing in reports: `"ok"`,
    /// `"degraded"`, or the error code.
    pub fn outcome(&self) -> &'static str {
        match self {
            Response::Ok {
                degraded: false, ..
            } => "ok",
            Response::Ok { degraded: true, .. } => "degraded",
            Response::Error { code, .. } => code.as_str(),
            Response::Overloaded { .. } => ErrorCode::Overloaded.as_str(),
            Response::InternalError { .. } => ErrorCode::InternalError.as_str(),
        }
    }

    /// Serializes the response as one compact JSON line (no newline).
    pub fn to_json(&self) -> Json {
        let id_json = |id: &Option<u64>| id.map_or(Json::Null, Json::UInt);
        match self {
            Response::Ok {
                id,
                kind,
                rung,
                degraded,
                degrade_reason,
                verified,
                payload,
            } => {
                let mut pairs = vec![
                    ("id".to_string(), Json::UInt(*id)),
                    ("status".to_string(), Json::from("ok")),
                    ("kind".to_string(), Json::from(*kind)),
                    ("rung".to_string(), Json::from(rung.as_str())),
                    ("degraded".to_string(), Json::Bool(*degraded)),
                ];
                if let Some(reason) = degrade_reason {
                    pairs.push(("degrade_reason".to_string(), Json::from(*reason)));
                }
                if let Some(v) = verified {
                    pairs.push(("verified".to_string(), Json::Bool(*v)));
                }
                pairs.extend(payload.iter().cloned());
                Json::Object(pairs)
            }
            Response::Error { id, code, message } => Json::object([
                ("id", id_json(id)),
                ("status", Json::from("error")),
                ("code", Json::from(code.as_str())),
                ("message", Json::from(message.as_str())),
            ]),
            Response::Overloaded { id, retry_after_ms } => Json::object([
                ("id", id_json(id)),
                ("status", Json::from("overloaded")),
                ("code", Json::from(ErrorCode::Overloaded.as_str())),
                ("retry_after_ms", Json::UInt(*retry_after_ms)),
            ]),
            Response::InternalError {
                id,
                message,
                request,
            } => Json::object([
                ("id", id_json(id)),
                ("status", Json::from("internal_error")),
                ("code", Json::from(ErrorCode::InternalError.as_str())),
                ("message", Json::from(message.as_str())),
                ("request", Json::from(request.as_str())),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_request_kind() {
        let r = parse_request(r#"{"id":1,"kind":"dimacs","text":"p edge 2 1\ne 1 2\n","k":2}"#)
            .unwrap();
        assert_eq!(r.id, 1);
        assert_eq!(r.k, Some(2));
        assert!(matches!(r.kind, RequestKind::Dimacs { .. }));

        let r = parse_request(
            r#"{"id":2,"kind":"cfg","profile":"fp-loopnest","pressure":"high","seed":7,"budget":10}"#,
        )
        .unwrap();
        assert_eq!(r.budget, Some(10));
        assert!(matches!(r.kind, RequestKind::Cfg { seed: 7, .. }));

        let r = parse_request(r#"{"id":3,"kind":"module_slice","seed":42,"start":5,"count":2}"#)
            .unwrap();
        assert!(matches!(
            r.kind,
            RequestKind::ModuleSlice {
                seed: 42,
                start: 5,
                count: 2
            }
        ));

        let r = parse_request(r#"{"id":4,"kind":"panic","deadline_ms":0}"#).unwrap();
        assert_eq!(r.kind, RequestKind::Panic);
        assert_eq!(r.deadline_ms, Some(0));
    }

    #[test]
    fn malformed_lines_map_to_protocol_codes() {
        let e = parse_request("not json").unwrap_err();
        assert_eq!(e.code, ErrorCode::ParseError);
        let e = parse_request(r#"{"kind":"dimacs","text":""}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::InvalidRequest);
        let e = parse_request(r#"{"id":9,"kind":"warp"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::InvalidRequest);
        assert_eq!(e.id, Some(9), "id is recovered for correlation");
        let e = parse_request(r#"{"id":9,"kind":"cfg","profile":"x","pressure":"high","seed":1}"#)
            .unwrap_err();
        assert_eq!(e.code, ErrorCode::InvalidRequest);
        let deep = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
        let e = parse_request(&deep).unwrap_err();
        assert_eq!(
            e.code,
            ErrorCode::ParseError,
            "deep nesting is an error, not an abort"
        );
        let huge = format!(
            r#"{{"id":1,"kind":"dimacs","text":"{}"}}"#,
            "x".repeat(MAX_REQUEST_BYTES)
        );
        let e = parse_request(&huge).unwrap_err();
        assert_eq!(e.code, ErrorCode::TooLarge);
    }

    #[test]
    fn responses_serialize_with_stable_fields() {
        let ok = Response::Ok {
            id: 7,
            kind: "dimacs",
            rung: Rung::ChordalIrc,
            degraded: true,
            degrade_reason: Some("budget"),
            verified: Some(true),
            payload: vec![("colors".to_string(), Json::from(3usize))],
        };
        assert_eq!(
            ok.to_json().to_compact_string(),
            r#"{"id":7,"status":"ok","kind":"dimacs","rung":"chordal_irc","degraded":true,"degrade_reason":"budget","verified":true,"colors":3}"#
        );
        assert_eq!(ok.outcome(), "degraded");
        let over = Response::Overloaded {
            id: None,
            retry_after_ms: 25,
        };
        assert_eq!(
            over.to_json().to_compact_string(),
            r#"{"id":null,"status":"overloaded","code":"overloaded","retry_after_ms":25}"#
        );
    }
}
