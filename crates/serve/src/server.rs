//! The worker pool: a bounded request queue with explicit backpressure
//! and per-request panic isolation.
//!
//! Requests are submitted as raw JSONL lines together with a reply
//! sender.  `try_submit` never blocks — when the queue is at capacity it
//! immediately answers [`Response::Overloaded`] with a `retry_after_ms`
//! hint, which is the server's *only* overload behaviour: no unbounded
//! buffering, no silent drops.  `submit_blocking` instead waits for queue
//! space (the deterministic mode the E18 soak replays with).
//!
//! Workers never die: each request runs under
//! [`std::panic::catch_unwind`], and a panicking request is answered with
//! [`Response::InternalError`] carrying the panic message *and the
//! offending request line echoed verbatim* so the fault is replayable
//! offline (`serve --chaos < panics.jsonl`).  The pool keeps serving;
//! [`Server::panics_isolated`] counts the saves.

use crate::engine::Engine;
use crate::protocol::{parse_request, ErrorCode, Response};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Worker-pool policy knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Maximum queued (not yet picked up) requests before backpressure.
    pub queue_depth: usize,
    /// The `retry_after_ms` hint sent on overload.
    pub retry_after_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_depth: 64,
            retry_after_ms: 25,
        }
    }
}

struct Job {
    line: String,
    reply: Sender<Response>,
}

struct State {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a job is queued (workers wait here).
    available: Condvar,
    /// Signalled when a slot frees up (blocking submitters wait here).
    space: Condvar,
    depth: usize,
    engine: Arc<Engine>,
    served: AtomicU64,
    panics_isolated: AtomicU64,
}

/// Locks the queue, recovering from poisoning: a panic that escapes while
/// the lock is held must not take the whole pool down with it.
fn lock_state(shared: &Shared) -> MutexGuard<'_, State> {
    shared
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Final service counters, returned by [`Server::shutdown`] after every
/// worker has been joined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceSummary {
    /// Requests served (including error responses).
    pub served: u64,
    /// Worker panics caught and answered as `internal_error`.
    pub panics_isolated: u64,
    /// Workers that exited their loop normally at shutdown — the
    /// zero-worker-death invariant is `clean_worker_exits == workers`.
    pub clean_worker_exits: usize,
}

/// A running worker pool over a shared [`Engine`].
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    retry_after_ms: u64,
}

impl Server {
    /// Starts `config.workers` worker threads over `engine`.
    pub fn start(engine: Arc<Engine>, config: &ServerConfig) -> Server {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            space: Condvar::new(),
            depth: config.queue_depth.max(1),
            engine,
            served: AtomicU64::new(0),
            panics_isolated: AtomicU64::new(0),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a worker thread")
            })
            .collect();
        Server {
            shared,
            workers,
            retry_after_ms: config.retry_after_ms,
        }
    }

    /// Submits a request line without blocking.  On a full queue the
    /// overload response is delivered through `reply` immediately and
    /// `false` is returned — explicit backpressure, never buffering.
    pub fn try_submit(&self, line: String, reply: &Sender<Response>) -> bool {
        let overload_id = {
            let mut state = lock_state(&self.shared);
            if state.jobs.len() < self.shared.depth && !state.closed {
                state.jobs.push_back(Job {
                    line,
                    reply: reply.clone(),
                });
                drop(state);
                self.shared.available.notify_one();
                return true;
            }
            drop(state);
            // Recover the id (best effort) so the client can correlate.
            parse_request(&line).map_or_else(|e| e.id, |r| Some(r.id))
        };
        let _ = reply.send(Response::Overloaded {
            id: overload_id,
            retry_after_ms: self.retry_after_ms,
        });
        false
    }

    /// Submits a request line, waiting for queue space instead of
    /// answering `overloaded`.  Deterministic replays (E18) use this so
    /// queue timing never leaks into outcomes.
    pub fn submit_blocking(&self, line: String, reply: &Sender<Response>) {
        let mut state = lock_state(&self.shared);
        while state.jobs.len() >= self.shared.depth && !state.closed {
            state = self
                .shared
                .space
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        state.jobs.push_back(Job {
            line,
            reply: reply.clone(),
        });
        drop(state);
        self.shared.available.notify_one();
    }

    /// Submits one line and waits for its response — the synchronous
    /// convenience used by tests and the soak harness.
    pub fn execute_blocking(&self, line: &str) -> Response {
        let (tx, rx) = channel();
        self.submit_blocking(line.to_string(), &tx);
        rx.recv().unwrap_or_else(|_| Response::Error {
            id: None,
            code: ErrorCode::InternalError,
            message: "worker dropped the reply channel".to_string(),
        })
    }

    /// Requests served (including error responses) since start.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Worker panics caught and converted to `internal_error` responses.
    pub fn panics_isolated(&self) -> u64 {
        self.shared.panics_isolated.load(Ordering::Relaxed)
    }

    /// Live worker threads (a finished/joined handle means a dead worker;
    /// the zero-worker-death invariant checks this stays constant).
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|h| !h.is_finished()).count()
    }

    /// Drains the queue and joins every worker.  Queued requests are
    /// still served; new submissions are rejected as overloaded.  The
    /// returned summary is read *after* the join, so it covers every
    /// request the pool ever accepted.
    pub fn shutdown(self) -> ServiceSummary {
        {
            let mut state = lock_state(&self.shared);
            state.closed = true;
        }
        self.shared.available.notify_all();
        self.shared.space.notify_all();
        let mut clean_worker_exits = 0usize;
        for handle in self.workers {
            // A worker that panicked outside the catch_unwind scope would
            // surface here; join errors are deliberately not propagated
            // so shutdown always completes.
            if handle.join().is_ok() {
                clean_worker_exits += 1;
            }
        }
        ServiceSummary {
            served: self.shared.served.load(Ordering::Relaxed),
            panics_isolated: self.shared.panics_isolated.load(Ordering::Relaxed),
            clean_worker_exits,
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = lock_state(shared);
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    shared.space.notify_one();
                    break job;
                }
                if state.closed {
                    return;
                }
                state = shared
                    .available
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let response = serve_line(shared, &job.line);
        shared.served.fetch_add(1, Ordering::Relaxed);
        // A receiver that hung up is the client's problem, not ours.
        let _ = job.reply.send(response);
    }
}

/// Parses and executes one line with panic isolation.
fn serve_line(shared: &Shared, line: &str) -> Response {
    let picked_up = Instant::now();
    let req = match parse_request(line) {
        Ok(req) => req,
        Err(e) => return Response::from_request_error(e),
    };
    let id = req.id;
    match catch_unwind(AssertUnwindSafe(|| shared.engine.execute(&req, picked_up))) {
        Ok(response) => response,
        Err(payload) => {
            shared.panics_isolated.fetch_add(1, Ordering::Relaxed);
            Response::InternalError {
                id: Some(id),
                message: panic_message(payload.as_ref()),
                request: line.to_string(),
            }
        }
    }
}

/// Stringifies a panic payload (panics carry `&str` or `String` in
/// practice; anything else gets a generic label).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn chaos_server(workers: usize, queue_depth: usize) -> Server {
        let config = EngineConfig {
            chaos: true,
            ..EngineConfig::default()
        };
        Server::start(
            Arc::new(Engine::new(config)),
            &ServerConfig {
                workers,
                queue_depth,
                retry_after_ms: 5,
            },
        )
    }

    #[test]
    fn serves_and_shuts_down_cleanly() {
        let server = chaos_server(2, 8);
        let resp = server.execute_blocking(
            r#"{"id":1,"kind":"dimacs","text":"p edge 3 2\ne 1 2\ne 2 3\n","k":2}"#,
        );
        assert_eq!(resp.status(), "ok");
        assert_eq!(server.served(), 1);
        assert_eq!(server.live_workers(), 2);
        server.shutdown();
    }

    #[test]
    fn panics_are_isolated_and_echo_the_request() {
        let server = chaos_server(2, 8);
        let line = r#"{"id":13,"kind":"panic"}"#;
        let resp = server.execute_blocking(line);
        match &resp {
            Response::InternalError {
                id,
                message,
                request,
            } => {
                assert_eq!(*id, Some(13));
                assert!(message.contains("chaos request 13"), "{message}");
                assert_eq!(request, line, "offending line echoed for replay");
            }
            other => panic!("expected internal_error, got {other:?}"),
        }
        assert_eq!(server.panics_isolated(), 1);
        // The pool keeps serving after the panic.
        let resp =
            server.execute_blocking(r#"{"id":14,"kind":"dimacs","text":"p edge 2 1\ne 1 2\n"}"#);
        assert_eq!(resp.status(), "ok");
        assert_eq!(server.live_workers(), 2, "no worker died");
        server.shutdown();
    }

    #[test]
    fn full_queue_answers_overloaded_with_retry_hint() {
        // Zero-worker pools are impossible (min 1), so saturate a 1-deep
        // queue with a slow request: a panic request is instant, so use a
        // module slice to hold the worker while we overfill.
        let server = chaos_server(1, 1);
        let (tx, rx) = channel();
        // First job occupies the worker, second fills the queue slot; the
        // third must bounce.  Submission order is deterministic here even
        // though completion isn't — try_submit never blocks.
        let slow = r#"{"id":1,"kind":"module_slice","seed":9,"start":0,"count":8}"#;
        let mut accepted = 0;
        let mut bounced = 0;
        for i in 0..8 {
            let line = if i == 0 {
                slow.to_string()
            } else {
                format!(r#"{{"id":{i},"kind":"panic"}}"#)
            };
            if server.try_submit(line, &tx) {
                accepted += 1;
            } else {
                bounced += 1;
            }
        }
        assert!(
            bounced > 0,
            "a 1-deep queue must bounce some of 8 instant submissions"
        );
        let mut overloads = 0;
        for _ in 0..8 {
            if let Response::Overloaded { retry_after_ms, .. } =
                rx.recv().expect("every submission is answered")
            {
                assert_eq!(retry_after_ms, 5);
                overloads += 1;
            }
        }
        assert_eq!(overloads, bounced);
        assert_eq!(
            accepted + bounced,
            8,
            "every submission answered exactly once"
        );
        server.shutdown();
    }

    #[test]
    fn submit_blocking_never_overloads() {
        let server = chaos_server(1, 1);
        let (tx, rx) = channel();
        for i in 0..16 {
            server.submit_blocking(
                format!(r#"{{"id":{i},"kind":"dimacs","text":"p edge 2 1\ne 1 2\n"}}"#),
                &tx,
            );
        }
        let mut ok = 0;
        for _ in 0..16 {
            let resp = rx.recv().expect("answered");
            assert_eq!(resp.status(), "ok");
            ok += 1;
        }
        assert_eq!(ok, 16);
        server.shutdown();
    }
}
