//! Minimal, dependency-free JSON values with deterministic serialization.
//!
//! The experiment reports must serialize identically across runs (the CLI's
//! output is diffed byte-for-byte in CI and by the perf-trajectory tooling),
//! so objects preserve insertion order — no hash-map iteration order leaks
//! into the output — and floats use Rust's shortest-roundtrip formatting.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (serialized without a fractional part).
    Int(i64),
    /// An unsigned integer (serialized without a fractional part).
    UInt(u64),
    /// A double-precision float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array of values.
    Array(Vec<Json>),
    /// An object; pairs keep insertion order for deterministic output.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(values.into_iter().collect())
    }

    /// Serializes collected pass counters as an object in ascending name
    /// order — the deterministic `"stats"` field the experiment rows and
    /// summaries embed.  Counters are seed-deterministic (never wall
    /// clock), so the field is byte-identical across runs and `--jobs`
    /// values and is pinned by the golden fixtures.
    pub fn counters(c: &crate::Counters) -> Json {
        Json::Object(
            c.entries()
                .iter()
                .map(|&(k, v)| (k.to_string(), Json::UInt(v)))
                .collect(),
        )
    }

    /// Appends a `"stats"` counters field to an object row.
    pub fn push_counters(&mut self, c: &crate::Counters) {
        if let Json::Object(pairs) = self {
            pairs.push(("stats".to_string(), Json::counters(c)));
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and a trailing newline, the
    /// format the CLI writes to `--json` files.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    /// Parses a JSON document (the formats this module writes, plus
    /// ordinary whitespace variations).  Object key order is preserved,
    /// so `parse` then [`Json::to_pretty_string`] round-trips the CLI's
    /// own output byte-for-byte.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Looks up a key of an object (`None` for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for non-arrays).
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64` when losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The boolean payload (`None` for non-booleans).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    let text = format!("{x}");
                    out.push_str(&text);
                    // Keep the value a JSON number and round-trippable as a
                    // float: `1.0f64` formats as "1".
                    if !text.contains('.') && !text.contains('e') {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no NaN/Inf; encode as null like serde_json.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_sequence(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                })
            }
            Json::Object(pairs) => {
                write_sequence(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    let (key, value) = &pairs[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1)
                })
            }
        }
    }
}

/// Error produced by [`Json::parse`]: a message and the byte offset it
/// refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

/// Maximum container nesting [`Json::parse`] accepts.  The parser recurses
/// per nesting level, so without a cap a hostile document of a few hundred
/// thousand `[` bytes overflows the thread stack — an *uncatchable* abort,
/// not an `Err`.  128 levels is far beyond anything the writers in this
/// workspace produce.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.error("document nests too deeply"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escape) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // module's writer; reject rather than mangle.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.error("invalid \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full character.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonParseError {
                message: format!("invalid number `{text}`"),
                offset: start,
            })
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_sequence(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}

impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_is_deterministic_and_ordered() {
        let value = Json::object([
            ("b", Json::from(1usize)),
            ("a", Json::array([Json::from(true), Json::Null])),
            ("pct", Json::from(12.5)),
            ("whole", Json::from(3.0)),
        ]);
        assert_eq!(
            value.to_compact_string(),
            r#"{"b":1,"a":[true,null],"pct":12.5,"whole":3.0}"#
        );
        assert_eq!(value.to_compact_string(), value.clone().to_compact_string());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::from("a\"b\\c\nd").to_compact_string(),
            r#""a\"b\\c\nd""#
        );
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let value = Json::object([
            ("b", Json::from(1usize)),
            ("a", Json::array([Json::from(true), Json::Null])),
            ("pct", Json::from(12.5)),
            ("neg", Json::from(-3i64)),
            ("text", Json::from("a\"b\\c\nd")),
            ("nested", Json::object([("k", Json::array([]))])),
        ]);
        for text in [value.to_compact_string(), value.to_pretty_string()] {
            assert_eq!(Json::parse(&text).unwrap(), value, "input: {text}");
        }
    }

    #[test]
    fn parse_preserves_key_order_byte_for_byte() {
        let text = "{\n  \"z\": 1,\n  \"a\": [2, 3]\n}\n";
        let parsed = Json::parse(text).unwrap();
        assert_eq!(parsed.to_compact_string(), r#"{"z":1,"a":[2,3]}"#);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn parse_rejects_deep_nesting_instead_of_overflowing_the_stack() {
        // One level under the cap still parses...
        let ok = format!(
            "{}1{}",
            "[".repeat(MAX_PARSE_DEPTH),
            "]".repeat(MAX_PARSE_DEPTH)
        );
        assert!(Json::parse(&ok).is_ok());
        // ...but a pathological document (think: hostile request line) is a
        // typed error, not a stack-overflow abort.
        let deep = "[".repeat(100_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deeply"), "{err}");
        let mixed = "[{\"k\":".repeat(50_000);
        assert!(Json::parse(&mixed).is_err());
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let doc = Json::parse(r#"{"rows": [{"agree": true, "n": 7}]}"#).unwrap();
        let rows = doc.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("agree").and_then(Json::as_bool), Some(true));
        assert_eq!(rows[0].get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn pretty_output_ends_with_newline() {
        let value = Json::object([("x", Json::from(1usize))]);
        let text = value.to_pretty_string();
        assert!(text.ends_with('\n'));
        assert!(text.contains("  \"x\": 1"));
    }
}
