//! Per-pass statistics for the coalescing pipeline: deterministic named
//! **counters**, hierarchical wall-clock **spans**, and exporters.
//!
//! The design follows the LLVM `-stats` / `-time-passes` split the
//! experiments need:
//!
//! * **Counters** ([`counter!`], [`bump`]) are *deterministic*: they count
//!   algorithmic events (worklist iterations, spill victims, solver nodes),
//!   never wall clock, so for a fixed seed the collected values are
//!   byte-identical across runs, machines, and `--jobs` fan-outs.  They are
//!   gathered per work unit with [`collect`], which activates a frame on
//!   the *calling thread's* sink for the dynamic extent of a closure —
//!   outside any frame (or at [`Level::Off`]) the macro is a no-op that
//!   never touches, let alone grows, the sink.
//! * **Spans** ([`span!`], [`trace`]) record a wall-clock tree.  Timings
//!   are *never* deterministic, so spans are kept strictly out of the
//!   byte-compared report path: they only surface on stderr and in the
//!   `--trace-out` chrome://tracing sidecar.
//!
//! The level is resolved per thread (an explicit thread override via
//! [`with_level`], else the process-wide default): tests can suppress or
//! enable instrumentation on their own thread without racing the rest of a
//! concurrently running test binary.

#![warn(missing_docs)]

pub mod json;
pub mod trace;

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU8, Ordering};

/// How much instrumentation is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is recorded; [`bump`] and [`span!`] return immediately and
    /// the counter sink is never touched.
    Off,
    /// Counters are recorded inside [`collect`] frames; spans are off.
    /// This is the default: counters are deterministic and cheap (local
    /// accumulation in the passes, one sink write per pass), so the
    /// experiment reports can always embed them.
    Counters,
    /// Counters plus wall-clock spans (the `--trace-out` mode).
    Trace,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Off,
            2 => Level::Trace,
            _ => Level::Counters,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Level::Off => 0,
            Level::Counters => 1,
            Level::Trace => 2,
        }
    }
}

/// Process-wide default level; threads without an override resolve to it.
static DEFAULT_LEVEL: AtomicU8 = AtomicU8::new(1);

const THREAD_LEVEL_UNSET: u8 = u8::MAX;

thread_local! {
    /// Per-thread level override (`u8::MAX` = unset, fall back to default).
    static THREAD_LEVEL: Cell<u8> = const { Cell::new(THREAD_LEVEL_UNSET) };
    /// Number of active [`collect`] frames on this thread.  Kept in a
    /// plain `Cell` so the [`bump`] fast path is one thread-local read.
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    /// The frame stack itself: each frame accumulates `(name, value)`
    /// pairs in first-bump order (sorted on collection).
    static FRAMES: RefCell<Vec<Vec<(&'static str, u64)>>> = const { RefCell::new(Vec::new()) };
}

/// The process-wide default level (what threads without an override use).
pub fn default_level() -> Level {
    Level::from_u8(DEFAULT_LEVEL.load(Ordering::Relaxed))
}

/// Sets the process-wide default level.  Worker threads spawned after (or
/// running through) this call resolve to the new default unless they carry
/// a [`with_level`] override.
pub fn set_default_level(level: Level) {
    DEFAULT_LEVEL.store(level.as_u8(), Ordering::Relaxed);
}

/// The level in effect on the calling thread.
pub fn level() -> Level {
    let local = THREAD_LEVEL.with(Cell::get);
    if local == THREAD_LEVEL_UNSET {
        default_level()
    } else {
        Level::from_u8(local)
    }
}

/// Runs `f` with `level` in force on the calling thread, restoring the
/// previous state afterwards (panic-safe).  The override is thread-local:
/// concurrently running tests and worker threads are unaffected.
pub fn with_level<R>(level: Level, f: impl FnOnce() -> R) -> R {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_LEVEL.with(|l| l.set(self.0));
        }
    }
    let _restore = Restore(THREAD_LEVEL.with(|l| l.replace(level.as_u8())));
    f()
}

/// Adds `n` to the named counter of the innermost active [`collect`] frame
/// on this thread.
///
/// Outside any frame, or when the thread's level is [`Level::Off`], this
/// returns after one thread-local read without touching the sink — the
/// no-op path the hot passes rely on.  `name` should be a stable
/// `pass.event` identifier (e.g. `"spill.victims"`); it becomes a JSON key
/// in the experiment reports.
#[inline]
pub fn bump(name: &'static str, n: u64) {
    if DEPTH.with(Cell::get) == 0 || level() == Level::Off {
        return;
    }
    FRAMES.with_borrow_mut(|frames| {
        let frame = frames.last_mut().expect("DEPTH > 0 implies a frame");
        match frame.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => *v += n,
            None => frame.push((name, n)),
        }
    });
}

/// Test hook: the number of active [`collect`] frames on this thread.
pub fn sink_depth() -> usize {
    DEPTH.with(Cell::get)
}

/// Runs `f` with a fresh counter frame on the calling thread and returns
/// its result together with the counters the extent recorded.
///
/// Frames nest: an inner `collect` folds its totals into the enclosing
/// frame as it closes, so an outer scope sees the sum of everything that
/// happened inside it.  At [`Level::Off`] the closure runs without a frame
/// and the returned [`Counters`] are empty.
pub fn collect<R>(f: impl FnOnce() -> R) -> (R, Counters) {
    if level() == Level::Off {
        return (f(), Counters::default());
    }
    // Panic safety: the guard pops the frame (and repairs DEPTH) even when
    // `f` unwinds, so a caught panic in a worker cannot corrupt the sink.
    struct FrameGuard {
        armed: bool,
    }
    impl Drop for FrameGuard {
        fn drop(&mut self) {
            if self.armed {
                FRAMES.with_borrow_mut(|frames| {
                    frames.pop();
                });
                DEPTH.with(|d| d.set(d.get() - 1));
            }
        }
    }
    FRAMES.with_borrow_mut(|frames| frames.push(Vec::new()));
    DEPTH.with(|d| d.set(d.get() + 1));
    let mut guard = FrameGuard { armed: true };
    let result = f();
    guard.armed = false;
    DEPTH.with(|d| d.set(d.get() - 1));
    let mut entries = FRAMES.with_borrow_mut(|frames| {
        let frame = frames.pop().expect("collect frame present");
        // Fold into the parent frame so nested scopes aggregate upward.
        if let Some(parent) = frames.last_mut() {
            for &(name, value) in &frame {
                match parent.iter_mut().find(|(k, _)| *k == name) {
                    Some((_, v)) => *v += value,
                    None => parent.push((name, value)),
                }
            }
        }
        frame
    });
    entries.sort_unstable_by_key(|&(name, _)| name);
    (result, Counters { entries })
}

/// A set of named counter totals, sorted by name — the deterministic
/// object the experiment rows embed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    entries: Vec<(&'static str, u64)>,
}

impl Counters {
    /// The `(name, value)` pairs in ascending name order.
    pub fn entries(&self) -> &[(&'static str, u64)] {
        &self.entries
    }

    /// The value of one counter (0 when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .binary_search_by(|&(k, _)| k.cmp(name))
            .map_or(0, |i| self.entries[i].1)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The sum of every counter — the scalar "work units" figure the
    /// serve-path budgets charge.  Counters are algorithmic-event counts
    /// (never wall clock), so a budget fed by this total degrades
    /// deterministically for a fixed request.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|&(_, v)| v).sum()
    }

    /// Adds every counter of `other` into `self` (name-wise sums); the
    /// result stays sorted.  Merging is commutative and associative, so
    /// aggregates are independent of merge order — but callers merge in
    /// row order anyway to keep the code path itself deterministic.
    pub fn merge(&mut self, other: &Counters) {
        for &(name, value) in &other.entries {
            match self.entries.binary_search_by(|&(k, _)| k.cmp(name)) {
                Ok(i) => self.entries[i].1 += value,
                Err(i) => self.entries.insert(i, (name, value)),
            }
        }
    }
}

/// Adds to a named counter of the active [`collect`] frame:
/// `counter!("spill.victims")` bumps by 1, `counter!("spill.victims", n)`
/// by `n`.  A no-op (sink untouched) outside any frame or at
/// [`Level::Off`].
#[macro_export]
macro_rules! counter {
    ($name:literal) => {
        $crate::bump($name, 1)
    };
    ($name:literal, $n:expr) => {
        $crate::bump($name, $n as u64)
    };
}

/// Opens a wall-clock span: `let _span = span!("e16/function");`.  The
/// span closes (and records a trace event) when the guard drops.  Inactive
/// unless the thread's level is [`Level::Trace`].
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_outside_a_frame_is_a_no_op() {
        assert_eq!(sink_depth(), 0);
        bump("test.orphan", 7);
        let ((), counters) = collect(|| {});
        assert!(counters.is_empty(), "orphan bump must not leak into frames");
    }

    #[test]
    fn collect_gathers_sorted_counters() {
        let (value, counters) = collect(|| {
            counter!("z.last");
            counter!("a.first", 2);
            counter!("z.last", 4);
            42
        });
        assert_eq!(value, 42);
        assert_eq!(counters.entries(), &[("a.first", 2), ("z.last", 5)]);
        assert_eq!(counters.get("z.last"), 5);
        assert_eq!(counters.get("missing"), 0);
    }

    #[test]
    fn nested_frames_fold_into_the_parent() {
        let ((), outer) = collect(|| {
            counter!("outer.only");
            let ((), inner) = collect(|| counter!("shared", 3));
            assert_eq!(inner.entries(), &[("shared", 3)]);
            counter!("shared", 1);
        });
        assert_eq!(outer.get("outer.only"), 1);
        assert_eq!(outer.get("shared"), 4, "inner totals fold upward");
    }

    #[test]
    fn off_level_suppresses_collection_on_this_thread_only() {
        let ((), counters) = with_level(Level::Off, || {
            assert_eq!(level(), Level::Off);
            collect(|| counter!("suppressed"))
        });
        assert!(counters.is_empty());
        assert_eq!(level(), default_level());
        // A sibling thread is unaffected by the (dropped) override.
        let handle = std::thread::spawn(|| collect(|| counter!("alive")).1);
        assert_eq!(handle.join().unwrap().get("alive"), 1);
    }

    #[test]
    fn with_level_restores_on_panic() {
        let result = std::panic::catch_unwind(|| {
            with_level(Level::Off, || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(level(), default_level());
    }

    #[test]
    fn collect_survives_a_panicking_closure() {
        let result = std::panic::catch_unwind(|| {
            let _ = collect(|| {
                counter!("doomed");
                panic!("boom");
            });
        });
        assert!(result.is_err());
        assert_eq!(sink_depth(), 0, "frame must be popped on unwind");
        let ((), counters) = collect(|| counter!("after"));
        assert_eq!(counters.entries(), &[("after", 1)]);
    }

    #[test]
    fn merge_sums_name_wise_and_stays_sorted() {
        let ((), mut a) = collect(|| {
            counter!("m.x", 1);
            counter!("m.z", 10);
        });
        let ((), b) = collect(|| {
            counter!("m.x", 2);
            counter!("m.y", 5);
        });
        a.merge(&b);
        assert_eq!(a.entries(), &[("m.x", 3), ("m.y", 5), ("m.z", 10)]);
    }

    #[test]
    fn levels_order_and_default() {
        assert!(Level::Off < Level::Counters);
        assert!(Level::Counters < Level::Trace);
        assert_eq!(Level::from_u8(Level::Trace.as_u8()), Level::Trace);
        assert_eq!(Level::from_u8(Level::Off.as_u8()), Level::Off);
    }
}
