//! Hierarchical wall-clock spans and the chrome://tracing exporter.
//!
//! Spans form a per-thread tree (`span!("e16/function/liveness")` nested
//! inside `span!("e16/function")`); each completed span is recorded as one
//! complete event (`"ph":"X"`) in the chrome "trace event format", the
//! JSON schema both `chrome://tracing` and Perfetto load directly.
//!
//! Wall-clock data is inherently nondeterministic, so events only ever
//! leave the process via [`take_events`] → [`chrome_trace_json`] (the
//! `--trace-out` sidecar) or a stderr summary — never via the
//! byte-compared experiment reports.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::Level;

/// One completed span, in microseconds since the process trace epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (e.g. `"e16/function/liveness"`).
    pub name: &'static str,
    /// Start, µs since the first span of the process.
    pub ts_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Small dense per-thread id (chrome's `tid`).
    pub tid: u64,
    /// Nesting depth at the time the span opened (0 = root).
    pub depth: usize,
}

/// Completed events, appended in span-close order.
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
/// The instant `ts_us` values are relative to (first span wins).
static EPOCH: OnceLock<Instant> = OnceLock::new();
/// Source for dense thread ids, assigned on a thread's first span.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

const TID_UNSET: u64 = 0;

thread_local! {
    static TID: Cell<u64> = const { Cell::new(TID_UNSET) };
    static SPAN_DEPTH: Cell<usize> = const { Cell::new(0) };
}

fn thread_tid() -> u64 {
    TID.with(|t| {
        let mut id = t.get();
        if id == TID_UNSET {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// An open span; records a [`TraceEvent`] when dropped.  `None` when the
/// thread's level is below [`Level::Trace`] — the disabled path costs one
/// level check and allocates nothing.
#[must_use = "a span records on Drop; bind it with `let _span = ...`"]
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    depth: usize,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        SPAN_DEPTH.with(|d| d.set(self.depth));
        let epoch = *EPOCH.get_or_init(|| self.start);
        let ts_us = u64::try_from(self.start.saturating_duration_since(epoch).as_micros())
            .unwrap_or(u64::MAX);
        let dur_us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let event = TraceEvent {
            name: self.name,
            ts_us,
            dur_us,
            tid: thread_tid(),
            depth: self.depth,
        };
        if let Ok(mut events) = EVENTS.lock() {
            events.push(event);
        }
    }
}

/// Opens a span named `name` on the calling thread.  Prefer the
/// [`span!`](crate::span) macro at call sites.
pub fn span(name: &'static str) -> Option<SpanGuard> {
    if crate::level() != Level::Trace {
        return None;
    }
    let depth = SPAN_DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    Some(SpanGuard {
        name,
        start: Instant::now(),
        depth,
    })
}

/// Drains every completed event recorded so far (across all threads).
pub fn take_events() -> Vec<TraceEvent> {
    EVENTS
        .lock()
        .map(|mut events| std::mem::take(&mut *events))
        .unwrap_or_default()
}

/// Test hook: the open-span nesting depth on this thread.
pub fn span_depth() -> usize {
    SPAN_DEPTH.with(Cell::get)
}

/// Renders events as chrome "trace event format" JSON — the file
/// `--trace-out` writes, loadable by chrome://tracing and Perfetto.
/// Every span is a complete event (`"ph":"X"`) under `pid` 1 with the
/// recording thread's dense `tid`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        for c in e.name.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push_str(&format!(
            "\",\"cat\":\"pass\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"depth\":{}}}}}",
            e.tid, e.ts_us, e.dur_us, e.depth
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// A human span summary for stderr: total wall time per span name, sorted
/// by descending total, with call counts.  Purely informational.
pub fn summary_lines(events: &[TraceEvent]) -> Vec<String> {
    let mut totals: Vec<(&'static str, u64, u64)> = Vec::new();
    for e in events {
        match totals.iter_mut().find(|(n, _, _)| *n == e.name) {
            Some((_, total, count)) => {
                *total += e.dur_us;
                *count += 1;
            }
            None => totals.push((e.name, e.dur_us, 1)),
        }
    }
    totals.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    totals
        .into_iter()
        .map(|(name, total_us, count)| {
            format!(
                "{:>10.3} ms  {:>8} calls  {}",
                total_us as f64 / 1000.0,
                count,
                name
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_level;

    #[test]
    fn spans_are_inactive_below_trace_level() {
        with_level(Level::Counters, || {
            assert!(span("trace-test/inactive").is_none());
            assert_eq!(span_depth(), 0);
        });
        with_level(Level::Off, || {
            assert!(span("trace-test/inactive-off").is_none());
        });
    }

    #[test]
    fn nested_spans_record_depth_and_restore_it() {
        let events = with_level(Level::Trace, || {
            {
                let _outer = span("trace-test/depth-outer");
                assert_eq!(span_depth(), 1);
                let _inner = span("trace-test/depth-inner");
                assert_eq!(span_depth(), 2);
            }
            assert_eq!(span_depth(), 0);
            take_events()
        });
        // Other tests may run concurrently; look only at our own names.
        let inner = events
            .iter()
            .find(|e| e.name == "trace-test/depth-inner")
            .expect("inner event recorded");
        let outer = events
            .iter()
            .find(|e| e.name == "trace-test/depth-outer")
            .expect("outer event recorded");
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.tid, outer.tid);
        assert!(outer.dur_us >= inner.dur_us);
    }

    #[test]
    fn chrome_trace_json_has_the_pinned_schema() {
        // Schema shape only: names, phases, pid/tid/args — never durations.
        let events = vec![
            TraceEvent {
                name: "e13/facts",
                ts_us: 0,
                dur_us: 5,
                tid: 1,
                depth: 0,
            },
            TraceEvent {
                name: "e13/alloc \"k=4\"",
                ts_us: 2,
                dur_us: 3,
                tid: 2,
                depth: 1,
            },
        ];
        let json = chrome_trace_json(&events);
        assert_eq!(
            json,
            "{\"traceEvents\":[\
             {\"name\":\"e13/facts\",\"cat\":\"pass\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":5,\"args\":{\"depth\":0}},\
             {\"name\":\"e13/alloc \\\"k=4\\\"\",\"cat\":\"pass\",\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":2,\"dur\":3,\"args\":{\"depth\":1}}\
             ],\"displayTimeUnit\":\"ms\"}"
        );
    }

    #[test]
    fn empty_trace_is_still_valid_json() {
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }

    #[test]
    fn summary_lines_aggregate_by_name() {
        let events = vec![
            TraceEvent {
                name: "sum/a",
                ts_us: 0,
                dur_us: 1500,
                tid: 1,
                depth: 0,
            },
            TraceEvent {
                name: "sum/b",
                ts_us: 0,
                dur_us: 4000,
                tid: 1,
                depth: 0,
            },
            TraceEvent {
                name: "sum/a",
                ts_us: 0,
                dur_us: 500,
                tid: 2,
                depth: 0,
            },
        ];
        let lines = summary_lines(&events);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("sum/b"), "largest total first: {lines:?}");
        assert!(lines[1].contains("sum/a"));
        assert!(lines[1].contains("2 calls"));
    }
}
