//! Off-level fast-path guarantee: the disabled macro paths perform no
//! heap allocation and never touch the counter sink.
//!
//! Uses a counting global allocator with a *thread-local* tally so the
//! assertion is immune to concurrent test threads allocating.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<usize> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCS.with(Cell::get);
    f();
    ALLOCS.with(Cell::get) - before
}

#[test]
fn disabled_counter_and_span_paths_do_not_allocate() {
    coalesce_stats::with_level(coalesce_stats::Level::Off, || {
        // Warm up the thread-locals outside the measured window.
        coalesce_stats::bump("noalloc.warmup", 1);
        assert!(coalesce_stats::trace::span("noalloc/warmup").is_none());

        let n = allocations_during(|| {
            for _ in 0..10_000 {
                coalesce_stats::counter!("noalloc.bump");
                coalesce_stats::counter!("noalloc.bump_n", 3);
                let _span = coalesce_stats::span!("noalloc/span");
            }
        });
        assert_eq!(n, 0, "Off-level counter/span paths must not allocate");
        assert_eq!(coalesce_stats::sink_depth(), 0, "sink must stay untouched");
    });
}

#[test]
fn bump_outside_any_frame_does_not_allocate_even_at_counters_level() {
    coalesce_stats::with_level(coalesce_stats::Level::Counters, || {
        coalesce_stats::bump("noalloc.warmup2", 1);
        let n = allocations_during(|| {
            for _ in 0..10_000 {
                coalesce_stats::counter!("noalloc.orphan");
            }
        });
        assert_eq!(n, 0, "bump with no collect frame must not allocate");
    });
}
