//! The standard checker suite.
//!
//! Each checker audits one kind of artifact when the context carries it and
//! is silent otherwise.  All checkers are read-only and compare against the
//! [`crate::reference`] implementations, never against the audited code.

use crate::reference::{
    check_clique, check_peo, interference_pairs, pair_key, transfer_in, transfer_out, RefCfg,
    RefDoms, RefGraph, RefLiveness,
};
use crate::{rules, Rule, Verifier, VerifyCtx, Violation};
use coalesce_ir::function::{BlockId, Function, InstrView};
use coalesce_ir::Var;
use std::collections::BTreeSet;

/// At most this many violations are reported per rule per boundary; one
/// summary violation notes the remainder.
const MAX_REPORTS: usize = 5;

/// Boundaries-level size gates: full liveness recomputation is skipped
/// above this many blocks, full interference recomputation above this many
/// instructions (paranoid ignores both).
const BOUNDARIES_RECOMPUTE_BLOCKS: usize = 512;
const BOUNDARIES_INTERFERENCE_INSTRS: usize = 20_000;

/// Sampling stride target for per-block transfer-equation checks at the
/// boundaries level.
const BOUNDARIES_TRANSFER_BLOCKS: usize = 256;

/// The full suite, in audit order (CFG first — `verify` aborts on arena
/// corruption before later checkers touch the instruction stream).
pub fn standard_suite() -> [&'static dyn Verifier; 8] {
    [
        &CfgChecker,
        &SsaChecker,
        &LivenessChecker,
        &InterferenceChecker,
        &SpillChecker,
        &AllocChecker,
        &CertChecker,
        &CoalesceChecker,
    ]
}

/// Accumulates at most [`MAX_REPORTS`] violations per rule, then one
/// summary line.
struct Capped<'a> {
    out: &'a mut Vec<Violation>,
    rule: Rule,
    count: usize,
}

impl<'a> Capped<'a> {
    fn new(out: &'a mut Vec<Violation>, rule: Rule) -> Self {
        Capped {
            out,
            rule,
            count: 0,
        }
    }

    fn push(&mut self, location: String, explanation: String) {
        self.count += 1;
        if self.count <= MAX_REPORTS {
            self.out
                .push(Violation::new(self.rule, location, explanation));
        }
    }

    fn finish(self, site: &str) {
        if self.count > MAX_REPORTS {
            self.out.push(Violation::new(
                self.rule,
                site.to_string(),
                format!("...and {} more", self.count - MAX_REPORTS),
            ));
        }
    }
}

fn set_diff_summary(expected: &BTreeSet<Var>, actual: &BTreeSet<Var>) -> String {
    let missing: Vec<Var> = expected.difference(actual).take(4).copied().collect();
    let extra: Vec<Var> = actual.difference(expected).take(4).copied().collect();
    format!("missing {missing:?}, spurious {extra:?}")
}

fn as_btree(set: &coalesce_ir::VarSet) -> BTreeSet<Var> {
    set.iter().collect()
}

// ---------------------------------------------------------------------
// CFG well-formedness.
// ---------------------------------------------------------------------

/// Entry reachability, terminator/edge agreement, and flat-arena
/// block-range integrity.
#[derive(Debug)]
pub struct CfgChecker;

impl Verifier for CfgChecker {
    fn name(&self) -> &'static str {
        "cfg"
    }

    fn rules(&self) -> &'static [Rule] {
        &[
            rules::CFG_ENTRY_REACHABLE,
            rules::CFG_TERMINATOR_EDGES,
            rules::CFG_BLOCK_RANGES,
        ]
    }

    fn run(&self, cx: &VerifyCtx<'_>, out: &mut Vec<Violation>) {
        let Some(f) = cx.function else { return };
        let site = cx.site;

        // Block-range integrity first, from the raw layout only — the
        // sliced accessors panic on exactly the corruption we must report.
        let order = f.raw_order();
        let arena_len = f.raw_arena_len();
        let mut slot_owner = vec![u32::MAX; order.len()];
        let mut seen_instr = vec![false; arena_len];
        let mut ranges = Capped::new(out, rules::CFG_BLOCK_RANGES);
        for b in f.block_ids() {
            let (start, len) = f.raw_block_range(b);
            let (start, len) = (start as usize, len as usize);
            if start.checked_add(len).is_none_or(|end| end > order.len()) {
                ranges.push(
                    format!("{site}:{b}"),
                    format!(
                        "order range ({start}, {len}) exceeds order array of {}",
                        order.len()
                    ),
                );
                continue;
            }
            for slot in start..start + len {
                if slot_owner[slot] != u32::MAX {
                    ranges.push(
                        format!("{site}:{b}"),
                        format!(
                            "order slot {slot} is owned by both b{} and {b}",
                            slot_owner[slot]
                        ),
                    );
                    break;
                }
                slot_owner[slot] = b.index() as u32;
                let id = order[slot];
                if id.index() >= arena_len {
                    ranges.push(
                        format!("{site}:{b}"),
                        format!("order slot {slot} references arena record {id:?} of {arena_len}"),
                    );
                } else if seen_instr[id.index()] {
                    ranges.push(
                        format!("{site}:{b}"),
                        format!("arena record {id:?} appears in more than one block"),
                    );
                } else {
                    seen_instr[id.index()] = true;
                }
            }
        }
        ranges.finish(site);

        // Terminator targets and uses in range.
        let mut terms = Capped::new(out, rules::CFG_TERMINATOR_EDGES);
        for b in f.block_ids() {
            for s in f.terminator(b).successors() {
                if s.index() >= f.num_blocks() {
                    terms.push(
                        format!("{site}:{b}"),
                        format!("terminator targets out-of-range block {s}"),
                    );
                }
            }
            for v in f.terminator(b).uses() {
                if v.index() >= f.num_vars() {
                    terms.push(
                        format!("{site}:{b}"),
                        format!("terminator uses out-of-range variable {v}"),
                    );
                }
            }
        }
        terms.finish(site);

        // Entry reachability over the reference CFG.
        let cfg = RefCfg::build(f);
        let mut reach = Capped::new(out, rules::CFG_ENTRY_REACHABLE);
        for b in f.block_ids() {
            if !cfg.reachable[b.index()] {
                reach.push(
                    format!("{site}:{b}"),
                    format!("block {b} is unreachable from entry {}", f.entry),
                );
            }
        }
        reach.finish(site);
    }
}

// ---------------------------------------------------------------------
// Strict SSA.
// ---------------------------------------------------------------------

/// Single definitions, definitions dominating uses, and φ/predecessor
/// agreement.
#[derive(Debug)]
pub struct SsaChecker;

/// A use position inside a block; the block end (φ-argument and terminator
/// uses) sorts after every instruction.
const BLOCK_END: usize = usize::MAX;

impl SsaChecker {
    fn def_sites(
        f: &Function,
        out: &mut Vec<Violation>,
        site: &str,
    ) -> Vec<Option<(usize, usize)>> {
        let mut defs: Vec<Option<(usize, usize)>> = vec![None; f.num_vars()];
        let mut single = Capped::new(out, rules::SSA_SINGLE_DEF);
        for (b, i, instr) in f.instructions() {
            let Some(d) = instr.def() else { continue };
            if d.index() >= f.num_vars() {
                continue; // reported by the CFG checker's range rules
            }
            match defs[d.index()] {
                Some((fb, fi)) => single.push(
                    format!("{site}:{b}"),
                    format!("{d} defined at b{fb}[{fi}] and again at {b}[{i}]"),
                ),
                None => defs[d.index()] = Some((b.index(), i)),
            }
        }
        single.finish(site);
        defs
    }
}

impl Verifier for SsaChecker {
    fn name(&self) -> &'static str {
        "ssa"
    }

    fn rules(&self) -> &'static [Rule] {
        &[
            rules::SSA_SINGLE_DEF,
            rules::SSA_DOMINANCE,
            rules::SSA_PHI_COHERENCE,
        ]
    }

    fn run(&self, cx: &VerifyCtx<'_>, out: &mut Vec<Violation>) {
        let Some(f) = cx.function else { return };
        if !cx.assume_ssa {
            return;
        }
        let site = cx.site;
        let cfg = RefCfg::build(f);
        let defs = Self::def_sites(f, out, site);

        // φ coherence: block-head position and argument/predecessor
        // agreement as multisets.
        let mut phis = Capped::new(out, rules::SSA_PHI_COHERENCE);
        for b in f.block_ids() {
            let mut seen_non_phi = false;
            for (i, instr) in f.block_instrs(b).enumerate() {
                let InstrView::Phi { args, .. } = instr else {
                    seen_non_phi = true;
                    continue;
                };
                if seen_non_phi {
                    phis.push(
                        format!("{site}:{b}"),
                        format!("phi at position {i} after a non-phi instruction"),
                    );
                }
                let mut arg_preds: Vec<usize> = args.iter().map(|a| a.pred.index()).collect();
                arg_preds.sort_unstable();
                let mut actual = cfg.preds[b.index()].clone();
                actual.sort_unstable();
                if arg_preds != actual {
                    phis.push(
                        format!("{site}:{b}"),
                        format!(
                            "phi argument predecessors {arg_preds:?} do not match actual predecessors {actual:?}"
                        ),
                    );
                }
            }
        }
        phis.finish(site);

        // Dominance: every use reached by its definition.  Uses in
        // unreachable blocks are skipped (strictness is a property of
        // executable paths).
        let doms = RefDoms::compute(f, &cfg);
        let mut dom = Capped::new(out, rules::SSA_DOMINANCE);
        let check_use = |v: Var, ub: usize, up: usize, what: &str, dom: &mut Capped<'_>| {
            if v.index() >= f.num_vars() {
                dom.push(
                    format!("{site}:b{ub}"),
                    format!("{what} uses out-of-range variable {v}"),
                );
                return;
            }
            let Some((db, dp)) = defs[v.index()] else {
                dom.push(
                    format!("{site}:b{ub}"),
                    format!("{what} uses {v}, which has no definition"),
                );
                return;
            };
            let ok = if db == ub {
                dp < up
            } else {
                doms.dominates(db, ub)
            };
            if !ok {
                dom.push(
                    format!("{site}:b{ub}"),
                    format!(
                        "{what} uses {v} but its definition at b{db}[{dp}] does not dominate it"
                    ),
                );
            }
        };
        for b in f.block_ids() {
            if !cfg.reachable[b.index()] {
                continue;
            }
            for (i, instr) in f.block_instrs(b).enumerate() {
                if let InstrView::Phi { args, .. } = instr {
                    for a in args {
                        if a.pred.index() < f.num_blocks() && cfg.reachable[a.pred.index()] {
                            check_use(a.value, a.pred.index(), BLOCK_END, "phi argument", &mut dom);
                        }
                    }
                } else {
                    for &u in instr.local_uses() {
                        check_use(u, b.index(), i, &format!("instruction {i}"), &mut dom);
                    }
                }
            }
            for u in f.terminator(b).uses() {
                check_use(u, b.index(), BLOCK_END, "terminator", &mut dom);
            }
        }
        dom.finish(site);
    }
}

// ---------------------------------------------------------------------
// Liveness consistency.
// ---------------------------------------------------------------------

/// Transfer-equation agreement on (sampled) blocks, plus a full
/// independent fixpoint recomputation when the level allows.
///
/// The two rules are deliberately separate: the transfer equations are
/// local and accept any consistent over-approximation (a variable
/// spuriously live around a cycle with no use still satisfies them); only
/// the full least-fixpoint recomputation rejects those, so `boundaries`
/// size-gates it while `paranoid` always runs it.
#[derive(Debug)]
pub struct LivenessChecker;

impl Verifier for LivenessChecker {
    fn name(&self) -> &'static str {
        "liveness"
    }

    fn rules(&self) -> &'static [Rule] {
        &[rules::LIVE_TRANSFER, rules::LIVE_RECOMPUTE]
    }

    fn run(&self, cx: &VerifyCtx<'_>, out: &mut Vec<Violation>) {
        let (Some(f), Some(live)) = (cx.function, cx.liveness) else {
            return;
        };
        let site = cx.site;
        let n = f.num_blocks();
        let stride = if cx.level.is_paranoid() {
            1
        } else {
            n.div_ceil(BOUNDARIES_TRANSFER_BLOCKS).max(1)
        };
        let mut transfer = Capped::new(out, rules::LIVE_TRANSFER);
        for b in (0..n).step_by(stride) {
            let block = BlockId::new(b);
            let claimed_in = as_btree(live.live_in(block));
            let claimed_out = as_btree(live.live_out(block));
            let expected_out = transfer_out(f, b, |s| as_btree(live.live_in(BlockId::new(s))));
            if expected_out != claimed_out {
                transfer.push(
                    format!("{site}:{block}"),
                    format!(
                        "live-out violates the transfer equation: {}",
                        set_diff_summary(&expected_out, &claimed_out)
                    ),
                );
            }
            let expected_in = transfer_in(f, b, &claimed_out);
            if expected_in != claimed_in {
                transfer.push(
                    format!("{site}:{block}"),
                    format!(
                        "live-in violates the backward walk from live-out: {}",
                        set_diff_summary(&expected_in, &claimed_in)
                    ),
                );
            }
        }
        transfer.finish(site);

        if cx.level.is_paranoid() || n <= BOUNDARIES_RECOMPUTE_BLOCKS {
            let reference = RefLiveness::compute(f);
            let mut recompute = Capped::new(out, rules::LIVE_RECOMPUTE);
            for b in 0..n {
                let block = BlockId::new(b);
                let claimed_in = as_btree(live.live_in(block));
                let claimed_out = as_btree(live.live_out(block));
                if reference.live_in[b] != claimed_in {
                    recompute.push(
                        format!("{site}:{block}"),
                        format!(
                            "live-in differs from the reference fixpoint: {}",
                            set_diff_summary(&reference.live_in[b], &claimed_in)
                        ),
                    );
                }
                if reference.live_out[b] != claimed_out {
                    recompute.push(
                        format!("{site}:{block}"),
                        format!(
                            "live-out differs from the reference fixpoint: {}",
                            set_diff_summary(&reference.live_out[b], &claimed_out)
                        ),
                    );
                }
            }
            recompute.finish(site);
        }
    }
}

// ---------------------------------------------------------------------
// Interference soundness and completeness.
// ---------------------------------------------------------------------

/// Every edge must be backed by a simultaneous-liveness witness
/// (soundness) and every witnessed pair must be an edge (completeness),
/// under the interference definition the graph claims to implement.
#[derive(Debug)]
pub struct InterferenceChecker;

impl Verifier for InterferenceChecker {
    fn name(&self) -> &'static str {
        "interference"
    }

    fn rules(&self) -> &'static [Rule] {
        &[
            rules::INTERFERENCE_MISSING_EDGE,
            rules::INTERFERENCE_SPURIOUS_EDGE,
        ]
    }

    fn run(&self, cx: &VerifyCtx<'_>, out: &mut Vec<Violation>) {
        let (Some(f), Some(icx)) = (cx.function, cx.interference) else {
            return;
        };
        if !cx.level.is_paranoid() && f.num_instrs_total() > BOUNDARIES_INTERFERENCE_INSTRS {
            return;
        }
        let site = cx.site;
        let reference = RefLiveness::compute(f);
        let expected = interference_pairs(f, &reference, icx.kind);
        let mut actual = std::collections::HashSet::with_capacity(expected.len());
        for (a, b) in icx.ig.graph.edges() {
            actual.insert(pair_key(a.index(), b.index()));
        }
        let unpack = |key: u64| {
            (
                Var::new((key >> 32) as usize),
                Var::new((key & 0xffff_ffff) as usize),
            )
        };
        let mut missing = Capped::new(out, rules::INTERFERENCE_MISSING_EDGE);
        for &key in &expected {
            if !actual.contains(&key) {
                let (a, b) = unpack(key);
                missing.push(
                    site.to_string(),
                    format!("{a} and {b} are simultaneously live but share no edge"),
                );
            }
        }
        missing.finish(site);
        let mut spurious = Capped::new(out, rules::INTERFERENCE_SPURIOUS_EDGE);
        for &key in &actual {
            if !expected.contains(&key) {
                let (a, b) = unpack(key);
                spurious.push(
                    site.to_string(),
                    format!("edge {a}–{b} has no simultaneous-liveness witness"),
                );
            }
        }
        spurious.finish(site);
    }
}

// ---------------------------------------------------------------------
// Spill correctness.
// ---------------------------------------------------------------------

/// Post-spill claims: victims live at no block boundary (when the spiller
/// guarantees it) and recomputed `Maxlive` at most the claimed value.
/// Reload-before-use ordering on every path is covered by the SSA
/// dominance rule over the rewritten function.
#[derive(Debug)]
pub struct SpillChecker;

impl Verifier for SpillChecker {
    fn name(&self) -> &'static str {
        "spill"
    }

    fn rules(&self) -> &'static [Rule] {
        &[rules::SPILL_VICTIM_LIVE, rules::SPILL_MAXLIVE_EXCEEDED]
    }

    fn run(&self, cx: &VerifyCtx<'_>, out: &mut Vec<Violation>) {
        let (Some(f), Some(scx)) = (cx.function, cx.spill) else {
            return;
        };
        let site = cx.site;
        let reference = RefLiveness::compute(f);
        if scx.victims_die {
            let mut victims = Capped::new(out, rules::SPILL_VICTIM_LIVE);
            for &v in scx.victims {
                if reference.live_at_any_boundary(v) {
                    victims.push(
                        site.to_string(),
                        format!("spilled victim {v} is still live at a block boundary"),
                    );
                }
            }
            victims.finish(site);
        }
        let maxlive = reference.maxlive_precise(f);
        if maxlive > scx.claimed_maxlive {
            out.push(Violation::new(
                rules::SPILL_MAXLIVE_EXCEEDED,
                site.to_string(),
                format!(
                    "recomputed Maxlive {maxlive} exceeds the claimed {}",
                    scx.claimed_maxlive
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Allocation validity.
// ---------------------------------------------------------------------

/// Final-assignment audit: complete, within the register bound, and
/// overlap-free against independently recomputed (Chaitin) interference of
/// the final function.
#[derive(Debug)]
pub struct AllocChecker;

impl Verifier for AllocChecker {
    fn name(&self) -> &'static str {
        "alloc"
    }

    fn rules(&self) -> &'static [Rule] {
        &[
            rules::ALLOC_INTERFERENCE_OVERLAP,
            rules::ALLOC_REGISTER_BOUND,
            rules::ALLOC_UNASSIGNED,
        ]
    }

    fn run(&self, cx: &VerifyCtx<'_>, out: &mut Vec<Violation>) {
        let (Some(f), Some(acx)) = (cx.function, cx.allocation) else {
            return;
        };
        let site = cx.site;
        let mut bound = Capped::new(out, rules::ALLOC_REGISTER_BOUND);
        for i in 0..f.num_vars() {
            let v = Var::new(i);
            if let Some(r) = acx.assignment.register_of(v) {
                if r >= acx.k {
                    bound.push(
                        site.to_string(),
                        format!("{v} assigned register {r} with k = {}", acx.k),
                    );
                }
            }
        }
        bound.finish(site);
        let mut unassigned = Capped::new(out, rules::ALLOC_UNASSIGNED);
        for i in 0..f.num_vars() {
            let v = Var::new(i);
            if acx.assignment.register_of(v).is_none() && !acx.assignment.is_spilled(v) {
                unassigned.push(
                    site.to_string(),
                    format!("{v} has neither a register nor a spill slot"),
                );
            }
        }
        unassigned.finish(site);

        let reference = RefLiveness::compute(f);
        let pairs = interference_pairs(
            f,
            &reference,
            coalesce_ir::interference::InterferenceKind::Chaitin,
        );
        let mut overlap = Capped::new(out, rules::ALLOC_INTERFERENCE_OVERLAP);
        for &key in &pairs {
            let a = Var::new((key >> 32) as usize);
            let b = Var::new((key & 0xffff_ffff) as usize);
            if let (Some(ra), Some(rb)) =
                (acx.assignment.register_of(a), acx.assignment.register_of(b))
            {
                if ra == rb {
                    overlap.push(
                        site.to_string(),
                        format!("interfering {a} and {b} both hold register {ra}"),
                    );
                }
            }
        }
        overlap.finish(site);
    }
}

// ---------------------------------------------------------------------
// Certificates.
// ---------------------------------------------------------------------

/// PEO witnesses for chordality verdicts and clique witnesses for ω
/// claims, checked against an adjacency copy of the subject graph.
#[derive(Debug)]
pub struct CertChecker;

impl Verifier for CertChecker {
    fn name(&self) -> &'static str {
        "certificates"
    }

    fn rules(&self) -> &'static [Rule] {
        &[rules::CERT_PEO_INVALID, rules::CERT_CLIQUE_INVALID]
    }

    fn run(&self, cx: &VerifyCtx<'_>, out: &mut Vec<Violation>) {
        let Some(ccx) = cx.chordal else { return };
        let site = cx.site;
        let rg = RefGraph::build(ccx.graph);
        let mut peo_omega = None;
        if let Some(order) = ccx.peo {
            match check_peo(&rg, order) {
                Ok(omega) => peo_omega = Some(omega),
                Err(why) => out.push(Violation::new(
                    rules::CERT_PEO_INVALID,
                    site.to_string(),
                    format!("claimed PEO fails the parent test: {why}"),
                )),
            }
        }
        if let Some(claimed) = ccx.claimed_omega {
            if let Some(clique) = ccx.clique {
                if let Err(why) = check_clique(&rg, clique, claimed) {
                    out.push(Violation::new(
                        rules::CERT_CLIQUE_INVALID,
                        site.to_string(),
                        format!("omega witness rejected: {why}"),
                    ));
                }
            }
            if let Some(from_peo) = peo_omega {
                if from_peo != claimed {
                    out.push(Violation::new(
                        rules::CERT_CLIQUE_INVALID,
                        site.to_string(),
                        format!("claimed omega {claimed} but the PEO implies {from_peo}"),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Coalescing classes.
// ---------------------------------------------------------------------

/// Every merged class must be connected by affinity edges and contain no
/// interference edge of the original graph.
#[derive(Debug)]
pub struct CoalesceChecker;

impl Verifier for CoalesceChecker {
    fn name(&self) -> &'static str {
        "coalesce"
    }

    fn rules(&self) -> &'static [Rule] {
        &[rules::ALLOC_BOGUS_COALESCE]
    }

    fn run(&self, cx: &VerifyCtx<'_>, out: &mut Vec<Violation>) {
        let Some(ccx) = cx.coalesce else { return };
        let site = cx.site;
        let rg = RefGraph::build(ccx.graph);
        let mut bogus = Capped::new(out, rules::ALLOC_BOGUS_COALESCE);
        for (ci, class) in ccx.classes.iter().enumerate() {
            if class.len() < 2 {
                continue;
            }
            let members: BTreeSet<usize> = class.iter().map(|v| v.index()).collect();
            for (i, &a) in class.iter().enumerate() {
                for &b in &class[i + 1..] {
                    if rg.has(a.index(), b.index()) {
                        bogus.push(
                            format!("{site}:class{ci}"),
                            format!(
                                "merged vertices {} and {} interfere in the original graph",
                                a.index(),
                                b.index()
                            ),
                        );
                    }
                }
            }
            // Affinity connectivity via union-find over the class members.
            let idx: Vec<usize> = members.iter().copied().collect();
            let slot = |v: usize| idx.binary_search(&v).ok();
            let mut parent: Vec<usize> = (0..idx.len()).collect();
            fn find(parent: &mut [usize], mut x: usize) -> usize {
                while parent[x] != x {
                    parent[x] = parent[parent[x]];
                    x = parent[x];
                }
                x
            }
            for &(a, b) in ccx.affinities {
                if let (Some(sa), Some(sb)) = (slot(a.index()), slot(b.index())) {
                    let (ra, rb) = (find(&mut parent, sa), find(&mut parent, sb));
                    if ra != rb {
                        parent[ra] = rb;
                    }
                }
            }
            let root = find(&mut parent, 0);
            if (1..idx.len()).any(|i| find(&mut parent, i) != root) {
                bogus.push(
                    format!("{site}:class{ci}"),
                    format!(
                        "class {:?} is not connected by affinity edges",
                        idx.iter().take(8).collect::<Vec<_>>()
                    ),
                );
            }
        }
        bogus.finish(site);
    }
}
