//! Certificate-checking verifier layer for the coalescing pipeline.
//!
//! Bouchez–Darte–Rastello's results are checkable claims: strict SSA
//! implies a chordal interference graph, a perfect elimination ordering
//! witnesses chordality, `Maxlive` witnesses k-colorability.  This crate
//! audits what the pipeline actually emits at every pass boundary, in the
//! spirit of LLVM's `-verify-machineinstrs`:
//!
//! * a [`Verifier`] trait with structured [`Violation`] diagnostics (rule
//!   id, location, explanation) and a machine-checkable rule catalog
//!   ([`rules::CATALOG`]);
//! * a [`VerifyLevel`] knob — `off` (free), `boundaries` (structural and
//!   local-equation checks, recompute sampled/size-gated), `paranoid`
//!   (full independent recomputation of every analysis);
//! * independent reference implementations ([`reference`]) — the verifier
//!   never calls the dominator tree, liveness solver, interference builder
//!   or chordality machinery it audits; it recomputes from the defining
//!   equations with its own data structures;
//! * a mutation harness ([`mutation`]) that seeds known faults and checks
//!   the suite flags each with the right rule id — the verifier's own
//!   test suite.
//!
//! The verifier is strictly read-only: audits never mutate the artifacts
//! they check, so experiment output is byte-identical with or without
//! verification.

pub mod checks;
pub mod mutation;
pub mod reference;

use coalesce_alloc::RegisterAssignment;
use coalesce_graph::{Graph, VertexId};
use coalesce_ir::interference::InterferenceKind;
use coalesce_ir::{Function, InterferenceGraph, Liveness, Var};
use std::fmt;

/// How much verification effort to spend at each pipeline boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum VerifyLevel {
    /// No verification (the hot-path default).
    #[default]
    Off,
    /// Structural checks plus local consistency equations at every
    /// boundary; full recomputation only on small inputs.
    Boundaries,
    /// Full independent recomputation of every audited analysis,
    /// regardless of input size.
    Paranoid,
}

impl VerifyLevel {
    /// Every level, in increasing strictness.
    pub const ALL: [VerifyLevel; 3] = [
        VerifyLevel::Off,
        VerifyLevel::Boundaries,
        VerifyLevel::Paranoid,
    ];

    /// The CLI spelling of this level.
    pub fn name(self) -> &'static str {
        match self {
            VerifyLevel::Off => "off",
            VerifyLevel::Boundaries => "boundaries",
            VerifyLevel::Paranoid => "paranoid",
        }
    }

    /// `true` unless the level is [`VerifyLevel::Off`].
    pub fn is_on(self) -> bool {
        self != VerifyLevel::Off
    }

    /// `true` for [`VerifyLevel::Paranoid`].
    pub fn is_paranoid(self) -> bool {
        self == VerifyLevel::Paranoid
    }
}

impl std::str::FromStr for VerifyLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(VerifyLevel::Off),
            "boundaries" => Ok(VerifyLevel::Boundaries),
            "paranoid" => Ok(VerifyLevel::Paranoid),
            other => Err(format!(
                "unknown verify level `{other}` (expected off, boundaries or paranoid)"
            )),
        }
    }
}

impl fmt::Display for VerifyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule of the verifier's catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Stable kebab-case identifier, e.g. `ssa-dominance`.
    pub id: &'static str,
    /// One-line statement of the invariant the rule enforces.
    pub summary: &'static str,
}

/// The rule catalog: every invariant the suite can report, by stable id.
pub mod rules {
    use super::Rule;

    /// Every block is reachable from the entry block.
    pub const CFG_ENTRY_REACHABLE: Rule = Rule {
        id: "cfg-entry-reachable",
        summary: "every block is reachable from the entry block",
    };
    /// Terminators only reference in-range blocks and variables.
    pub const CFG_TERMINATOR_EDGES: Rule = Rule {
        id: "cfg-terminator-edges",
        summary: "terminator successors and uses are in range",
    };
    /// Flat-arena block ranges are in bounds, disjoint, and alias-free.
    pub const CFG_BLOCK_RANGES: Rule = Rule {
        id: "cfg-block-ranges",
        summary: "flat-arena block ranges are in bounds, disjoint and alias-free",
    };
    /// Every variable has at most one textual definition.
    pub const SSA_SINGLE_DEF: Rule = Rule {
        id: "ssa-single-def",
        summary: "every variable has exactly one definition",
    };
    /// Every use is dominated by its definition (strict SSA).
    pub const SSA_DOMINANCE: Rule = Rule {
        id: "ssa-dominance",
        summary: "every use is dominated by its definition",
    };
    /// φs sit at block heads with one argument per predecessor.
    pub const SSA_PHI_COHERENCE: Rule = Rule {
        id: "ssa-phi-coherence",
        summary: "phis sit at block heads with one argument per predecessor edge",
    };
    /// Claimed live sets satisfy the dataflow transfer equations.
    pub const LIVE_TRANSFER: Rule = Rule {
        id: "live-transfer",
        summary: "claimed live-in/out sets satisfy the transfer equations",
    };
    /// Claimed live sets equal an independent fixpoint recomputation.
    pub const LIVE_RECOMPUTE: Rule = Rule {
        id: "live-recompute",
        summary: "claimed live sets equal an independently recomputed fixpoint",
    };
    /// Every simultaneously-live pair has an interference edge.
    pub const INTERFERENCE_MISSING_EDGE: Rule = Rule {
        id: "interference-missing-edge",
        summary: "every simultaneously-live pair is present as an edge (completeness)",
    };
    /// Every interference edge is backed by a simultaneous-liveness witness.
    pub const INTERFERENCE_SPURIOUS_EDGE: Rule = Rule {
        id: "interference-spurious-edge",
        summary: "every edge has a simultaneous-liveness witness (soundness)",
    };
    /// Spilled victims are live at no block boundary after rewriting.
    pub const SPILL_VICTIM_LIVE: Rule = Rule {
        id: "spill-victim-live",
        summary: "spilled victims are live at no block boundary after rewriting",
    };
    /// Post-spill register pressure does not exceed the claimed value.
    pub const SPILL_MAXLIVE_EXCEEDED: Rule = Rule {
        id: "spill-maxlive-exceeded",
        summary: "post-spill Maxlive is at most the claimed value",
    };
    /// No two interfering variables share a register.
    pub const ALLOC_INTERFERENCE_OVERLAP: Rule = Rule {
        id: "alloc-interference-overlap",
        summary: "no two interfering variables share a register",
    };
    /// Every assigned register is below the register count `k`.
    pub const ALLOC_REGISTER_BOUND: Rule = Rule {
        id: "alloc-register-bound",
        summary: "every assigned register is below k",
    };
    /// Every variable is either assigned a register or spilled.
    pub const ALLOC_UNASSIGNED: Rule = Rule {
        id: "alloc-unassigned",
        summary: "every variable has a register or a spill slot",
    };
    /// Coalesced classes are affinity-connected and interference-free.
    pub const ALLOC_BOGUS_COALESCE: Rule = Rule {
        id: "alloc-bogus-coalesce",
        summary: "coalesced classes are affinity-connected and interference-free",
    };
    /// A claimed PEO really is a perfect elimination ordering.
    pub const CERT_PEO_INVALID: Rule = Rule {
        id: "cert-peo-invalid",
        summary: "a chordality verdict's PEO witness passes the parent test",
    };
    /// A claimed ω is witnessed by an actual clique of that size.
    pub const CERT_CLIQUE_INVALID: Rule = Rule {
        id: "cert-clique-invalid",
        summary: "an omega claim is witnessed by a clique of exactly that size",
    };
    /// A service response failed its own boundary re-verification.
    pub const SERVE_RESPONSE_UNVERIFIED: Rule = Rule {
        id: "serve-response-unverified",
        summary: "every service answer passes its boundary re-verification",
    };
    /// A service worker died instead of isolating a fault.
    pub const SERVE_WORKER_DIED: Rule = Rule {
        id: "serve-worker-died",
        summary: "every service worker survives fault injection to a clean exit",
    };

    /// The full catalog, in boundary order.
    pub const CATALOG: [Rule; 20] = [
        CFG_ENTRY_REACHABLE,
        CFG_TERMINATOR_EDGES,
        CFG_BLOCK_RANGES,
        SSA_SINGLE_DEF,
        SSA_DOMINANCE,
        SSA_PHI_COHERENCE,
        LIVE_TRANSFER,
        LIVE_RECOMPUTE,
        INTERFERENCE_MISSING_EDGE,
        INTERFERENCE_SPURIOUS_EDGE,
        SPILL_VICTIM_LIVE,
        SPILL_MAXLIVE_EXCEEDED,
        ALLOC_INTERFERENCE_OVERLAP,
        ALLOC_REGISTER_BOUND,
        ALLOC_UNASSIGNED,
        ALLOC_BOGUS_COALESCE,
        CERT_PEO_INVALID,
        CERT_CLIQUE_INVALID,
        SERVE_RESPONSE_UNVERIFIED,
        SERVE_WORKER_DIED,
    ];
}

/// One structured diagnostic: which rule failed, where, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule id from [`rules::CATALOG`].
    pub rule: &'static str,
    /// Where the violation was found (site, block, variable...).
    pub location: String,
    /// Human-readable explanation with the concrete witnesses.
    pub explanation: String,
}

impl Violation {
    /// Builds a violation of `rule` at `location`.
    pub fn new(rule: Rule, location: impl Into<String>, explanation: impl Into<String>) -> Self {
        Violation {
            rule: rule.id,
            location: location.into(),
            explanation: explanation.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.rule, self.location, self.explanation)
    }
}

/// The interference artifact under audit.
#[derive(Debug, Clone, Copy)]
pub struct InterferenceCtx<'a> {
    /// The interference graph the hot path built.
    pub ig: &'a InterferenceGraph,
    /// Which interference definition it claims to implement.
    pub kind: InterferenceKind,
}

/// The spill-pass claims under audit (over the post-spill function).
#[derive(Debug, Clone, Copy)]
pub struct SpillCtx<'a> {
    /// Variables the spiller claims to have evicted.
    pub victims: &'a [Var],
    /// The `Maxlive` the pass claims the rewritten function has.
    pub claimed_maxlive: usize,
    /// Whether this spiller guarantees victims are live at no block
    /// boundary afterwards (true for spill-everywhere-style rewrites;
    /// false for Belady splitting, which may keep a victim resident).
    pub victims_die: bool,
}

/// The register-allocation artifact under audit (over `VerifyCtx::function`,
/// which must be the final lowered function).
#[derive(Debug, Clone, Copy)]
pub struct AllocCtx<'a> {
    /// The final assignment.
    pub assignment: &'a RegisterAssignment,
    /// Target register count.
    pub k: usize,
}

/// Chordality/ω certificates under audit.
#[derive(Debug, Clone, Copy)]
pub struct ChordalCtx<'a> {
    /// The graph the certificates are about.
    pub graph: &'a Graph,
    /// A claimed perfect elimination ordering witnessing chordality.
    pub peo: Option<&'a [VertexId]>,
    /// A claimed clique number.
    pub claimed_omega: Option<usize>,
    /// A claimed maximum clique witnessing `claimed_omega`.
    pub clique: Option<&'a [VertexId]>,
}

/// A coalescing result under audit: merged classes must be connected by
/// affinities and contain no interference edge of the original graph.
#[derive(Debug, Clone, Copy)]
pub struct CoalesceCtx<'a> {
    /// The *original* (pre-merge) interference graph.
    pub graph: &'a Graph,
    /// The affinity edges the coalescer was allowed to merge along.
    pub affinities: &'a [(VertexId, VertexId)],
    /// The merged classes (singletons may be omitted).
    pub classes: &'a [Vec<VertexId>],
}

/// Everything one boundary hands to the suite.  Absent artifacts simply
/// skip their checks, so one ctx type serves every boundary.
#[derive(Debug, Clone, Copy)]
pub struct VerifyCtx<'a> {
    /// Verification effort.
    pub level: VerifyLevel,
    /// Which boundary this is, for diagnostics (e.g. `e13/int-branchy/low/spill`).
    pub site: &'a str,
    /// The function at this boundary, if any.
    pub function: Option<&'a Function>,
    /// Whether `function` claims to be in strict SSA form (post-SSA-destruction
    /// and post-Chaitin functions do not).
    pub assume_ssa: bool,
    /// Claimed liveness over `function`.
    pub liveness: Option<&'a Liveness>,
    /// Claimed interference graph over `function`.
    pub interference: Option<InterferenceCtx<'a>>,
    /// Spill-pass claims over `function` (the post-spill body).
    pub spill: Option<SpillCtx<'a>>,
    /// Final allocation over `function`.
    pub allocation: Option<AllocCtx<'a>>,
    /// Chordality certificates.
    pub chordal: Option<ChordalCtx<'a>>,
    /// Coalescing classes.
    pub coalesce: Option<CoalesceCtx<'a>>,
}

impl<'a> VerifyCtx<'a> {
    /// An empty context at `level` for boundary `site`; attach artifacts
    /// by setting fields.
    pub fn at(level: VerifyLevel, site: &'a str) -> Self {
        VerifyCtx {
            level,
            site,
            function: None,
            assume_ssa: true,
            liveness: None,
            interference: None,
            spill: None,
            allocation: None,
            chordal: None,
            coalesce: None,
        }
    }
}

/// One member of the checker suite.
pub trait Verifier {
    /// Checker name for diagnostics.
    fn name(&self) -> &'static str;
    /// The rules this checker can report.
    fn rules(&self) -> &'static [Rule];
    /// Audits `cx`, appending any violations to `out`.
    fn run(&self, cx: &VerifyCtx<'_>, out: &mut Vec<Violation>);
}

/// Runs the full standard suite over one boundary context.
///
/// Returns every violation found; empty means the boundary checks out.  At
/// [`VerifyLevel::Off`] this returns immediately.  If the flat-arena block
/// ranges are corrupt, only the CFG checker's findings are returned — the
/// remaining checkers cannot safely read the instruction stream.
pub fn verify(cx: &VerifyCtx<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    if !cx.level.is_on() {
        return out;
    }
    let _span = coalesce_stats::span!("verify/suite");
    let mut checks_run: u64 = 0;
    for checker in checks::standard_suite() {
        checker.run(cx, &mut out);
        checks_run += 1;
        if checker.name() == "cfg" && out.iter().any(|v| v.rule == rules::CFG_BLOCK_RANGES.id) {
            break;
        }
    }
    coalesce_stats::counter!("verify.checks_run", checks_run);
    coalesce_stats::counter!("verify.violations", out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        for level in VerifyLevel::ALL {
            assert_eq!(level.name().parse::<VerifyLevel>().unwrap(), level);
        }
        assert!("bogus".parse::<VerifyLevel>().is_err());
        assert!(VerifyLevel::Off < VerifyLevel::Boundaries);
        assert!(VerifyLevel::Boundaries < VerifyLevel::Paranoid);
        assert!(!VerifyLevel::Off.is_on());
        assert!(VerifyLevel::Paranoid.is_paranoid());
    }

    #[test]
    fn catalog_ids_are_unique_and_kebab_case() {
        let mut seen = std::collections::BTreeSet::new();
        for rule in rules::CATALOG {
            assert!(seen.insert(rule.id), "duplicate rule id {}", rule.id);
            assert!(rule
                .id
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '-' || c.is_ascii_digit()));
            assert!(!rule.summary.is_empty());
        }
    }

    #[test]
    fn off_level_reports_nothing() {
        let cx = VerifyCtx::at(VerifyLevel::Off, "test");
        assert!(verify(&cx).is_empty());
    }

    #[test]
    fn suite_rules_are_all_in_the_catalog() {
        let ids: std::collections::BTreeSet<&str> = rules::CATALOG.iter().map(|r| r.id).collect();
        for checker in checks::standard_suite() {
            for rule in checker.rules() {
                assert!(ids.contains(rule.id), "{} not in catalog", rule.id);
            }
        }
    }
}
