//! Seeded fault injectors — the verifier's own test harness.
//!
//! Each [`Fault`] builds the clean pipeline artifacts for a small
//! hand-written program, corrupts exactly one of them the way a real bug
//! would (a dropped interference edge, a moved reload, a miscolored
//! vertex, a broken φ, a corrupt block range...), and runs the suite on
//! the affected boundary.  The suite must flag the corruption with the
//! fault's [`Fault::expected_rule`]; on the uncorrupted artifacts it must
//! stay silent ([`verify_clean_sample`]).

use crate::{
    verify, AllocCtx, ChordalCtx, CoalesceCtx, InterferenceCtx, SpillCtx, VerifyCtx, VerifyLevel,
    Violation,
};
use coalesce_alloc::pipeline::{run_allocator_with_artifacts, AllocatorKind};
use coalesce_alloc::{CoalescingStrategy, RegisterAssignment};
use coalesce_graph::chordal::{
    chordal_clique_number, chordal_max_clique, perfect_elimination_ordering,
};
use coalesce_graph::VertexId;
use coalesce_ir::function::{BlockId, FunctionBuilder, Instr, Terminator};
use coalesce_ir::interference::{BuildOptions, InterferenceKind};
use coalesce_ir::spill::{spill_everywhere, spill_to_pressure, SpillResult};
use coalesce_ir::{Function, InstrView, InterferenceGraph, Liveness, Var};

/// The clean artifacts of one pipeline run over [`sample_program`].
#[derive(Debug)]
pub struct SampleArtifacts {
    /// The strict-SSA input function.
    pub function: Function,
    /// Audited liveness of `function`.
    pub liveness: Liveness,
    /// Audited intersection-interference graph of `function`.
    pub ig: InterferenceGraph,
    /// PEO witness for the graph's chordality.
    pub peo: Vec<VertexId>,
    /// Clique number of the graph.
    pub omega: usize,
    /// Maximum-clique witness for `omega`.
    pub clique: Vec<VertexId>,
    /// The function after spilling to `spill_k`.
    pub spilled: Function,
    /// Audited liveness of `spilled`.
    pub spilled_liveness: Liveness,
    /// Victims the spiller evicted.
    pub victims: Vec<Var>,
    /// Audited post-spill `Maxlive`.
    pub spilled_maxlive: usize,
    /// Pressure target the spill pass ran at.
    pub spill_k: usize,
    /// Final lowered function of the SSA-based allocator.
    pub alloc_function: Function,
    /// Its final register assignment.
    pub alloc_assignment: RegisterAssignment,
    /// Register count the allocator ran at.
    pub alloc_k: usize,
}

/// A small strict-SSA program with a diamond, a loop, and enough register
/// pressure (`Maxlive` 5) that spilling to `k = 3` evicts real victims.
pub fn sample_program() -> Function {
    let mut b = FunctionBuilder::new("mutation-sample");
    let entry = b.entry_block();
    let (left, right, join, header, body, exit) = (
        b.new_block(),
        b.new_block(),
        b.new_block(),
        b.new_block(),
        b.new_block(),
        b.new_block(),
    );
    let c = b.def(entry, "c");
    let x = b.def(entry, "x");
    let y = b.def(entry, "y");
    let z = b.def(entry, "z");
    let w = b.def(entry, "w");
    b.branch(entry, c, left, right);
    let l1 = b.op(left, "l1", &[x, y]);
    b.jump(left, join);
    let r1 = b.op(right, "r1", &[y, z]);
    b.jump(right, join);
    let p = b.phi(join, "p", &[(left, l1), (right, r1)]);
    b.jump(join, header);
    b.set_loop_depth(header, 1);
    b.set_loop_depth(body, 1);
    let i2 = b.fresh_var("i2");
    let i = b.phi(header, "i", &[(join, p), (body, i2)]);
    b.branch(header, c, body, exit);
    let t = b.op(body, "t", &[i, x, w]);
    b.function_mut().emit_op(body, Some(i2), &[t]);
    b.jump(body, header);
    b.ret(exit, &[i, w, z]);
    b.finish()
}

/// Builds the full clean artifact set over [`sample_program`].
pub fn sample_artifacts() -> SampleArtifacts {
    let function = sample_program();
    let liveness = Liveness::compute(&function);
    let ig = InterferenceGraph::build_with(
        &function,
        &liveness,
        BuildOptions {
            kind: InterferenceKind::Intersection,
            ..BuildOptions::default()
        },
    );
    let peo = perfect_elimination_ordering(&ig.graph)
        .expect("strict-SSA intersection graph must be chordal");
    let omega = chordal_clique_number(&ig.graph).expect("chordal");
    let clique = chordal_max_clique(&ig.graph).expect("chordal");

    let spill_k = 3;
    let mut spilled = function.clone();
    let result = spill_to_pressure(&mut spilled, spill_k);
    assert!(!result.spilled.is_empty(), "sample must force spills");
    let spilled_liveness = Liveness::compute(&spilled);
    let spilled_maxlive = spilled_liveness.maxlive_precise(&spilled);

    let alloc_k = 5;
    let (_, artifacts) = run_allocator_with_artifacts(
        &function,
        alloc_k,
        AllocatorKind::SsaBased(CoalescingStrategy::Briggs),
    );

    SampleArtifacts {
        function,
        liveness,
        ig,
        peo,
        omega,
        clique,
        spilled,
        spilled_liveness,
        victims: result.spilled,
        spilled_maxlive,
        spill_k,
        alloc_function: artifacts.function,
        alloc_assignment: artifacts.assignment,
        alloc_k,
    }
}

/// One seeded fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Remove one interference edge the liveness demands.
    DropInterferenceEdge,
    /// Add an interference edge with no simultaneous-liveness witness.
    AddSpuriousEdge,
    /// Swap a reload with the instruction that consumes it.
    MoveReload,
    /// Give an interfering pair the same register.
    MiscolorVertex,
    /// Assign a register `>= k`.
    RegisterOutOfRange,
    /// Leave a variable with neither register nor spill slot.
    MissingAssignment,
    /// Point a φ argument at a non-predecessor block.
    BreakPhi,
    /// Define an already-defined variable a second time.
    DuplicateDef,
    /// Grow a block's flat-arena order range past the order array.
    CorruptBlockRange,
    /// Add a block no edge reaches.
    UnreachableBlock,
    /// Bypass a terminator to an out-of-range block.
    BadTerminator,
    /// Clear a genuinely live variable from every claimed live set.
    CorruptLiveness,
    /// Repeat a vertex inside a claimed PEO.
    CorruptPeo,
    /// Claim an omega one larger than the witness supports.
    InflateOmega,
    /// Insert a use that keeps a spilled victim live across a boundary.
    ResurrectVictim,
    /// Claim a post-spill Maxlive one lower than reality.
    UnderclaimMaxlive,
    /// Merge two interfering vertices with no affinity between them.
    BogusCoalesce,
}

impl Fault {
    /// Every injector, in catalog order.
    pub const ALL: [Fault; 17] = [
        Fault::DropInterferenceEdge,
        Fault::AddSpuriousEdge,
        Fault::MoveReload,
        Fault::MiscolorVertex,
        Fault::RegisterOutOfRange,
        Fault::MissingAssignment,
        Fault::BreakPhi,
        Fault::DuplicateDef,
        Fault::CorruptBlockRange,
        Fault::UnreachableBlock,
        Fault::BadTerminator,
        Fault::CorruptLiveness,
        Fault::CorruptPeo,
        Fault::InflateOmega,
        Fault::ResurrectVictim,
        Fault::UnderclaimMaxlive,
        Fault::BogusCoalesce,
    ];

    /// The rule id the suite must report for this fault.
    pub fn expected_rule(self) -> &'static str {
        match self {
            Fault::DropInterferenceEdge => crate::rules::INTERFERENCE_MISSING_EDGE.id,
            Fault::AddSpuriousEdge => crate::rules::INTERFERENCE_SPURIOUS_EDGE.id,
            Fault::MoveReload => crate::rules::SSA_DOMINANCE.id,
            Fault::MiscolorVertex => crate::rules::ALLOC_INTERFERENCE_OVERLAP.id,
            Fault::RegisterOutOfRange => crate::rules::ALLOC_REGISTER_BOUND.id,
            Fault::MissingAssignment => crate::rules::ALLOC_UNASSIGNED.id,
            Fault::BreakPhi => crate::rules::SSA_PHI_COHERENCE.id,
            Fault::DuplicateDef => crate::rules::SSA_SINGLE_DEF.id,
            Fault::CorruptBlockRange => crate::rules::CFG_BLOCK_RANGES.id,
            Fault::UnreachableBlock => crate::rules::CFG_ENTRY_REACHABLE.id,
            Fault::BadTerminator => crate::rules::CFG_TERMINATOR_EDGES.id,
            Fault::CorruptLiveness => crate::rules::LIVE_TRANSFER.id,
            Fault::CorruptPeo => crate::rules::CERT_PEO_INVALID.id,
            Fault::InflateOmega => crate::rules::CERT_CLIQUE_INVALID.id,
            Fault::ResurrectVictim => crate::rules::SPILL_VICTIM_LIVE.id,
            Fault::UnderclaimMaxlive => crate::rules::SPILL_MAXLIVE_EXCEEDED.id,
            Fault::BogusCoalesce => crate::rules::ALLOC_BOGUS_COALESCE.id,
        }
    }

    /// Injects this fault into freshly built clean artifacts and runs the
    /// suite at [`VerifyLevel::Paranoid`] on the affected boundary.
    pub fn inject_and_verify(self) -> Vec<Violation> {
        let mut a = sample_artifacts();
        let site = "mutation";
        match self {
            Fault::DropInterferenceEdge => {
                let (u, v) = a.ig.graph.edges().next().expect("graph has edges");
                a.ig.graph.remove_edge(u, v);
                let mut cx = VerifyCtx::at(VerifyLevel::Paranoid, site);
                cx.function = Some(&a.function);
                cx.interference = Some(InterferenceCtx {
                    ig: &a.ig,
                    kind: InterferenceKind::Intersection,
                });
                verify(&cx)
            }
            Fault::AddSpuriousEdge => {
                let pair = non_adjacent_pair(&a.ig).expect("graph is not complete");
                a.ig.graph.add_edge(pair.0, pair.1);
                let mut cx = VerifyCtx::at(VerifyLevel::Paranoid, site);
                cx.function = Some(&a.function);
                cx.interference = Some(InterferenceCtx {
                    ig: &a.ig,
                    kind: InterferenceKind::Intersection,
                });
                verify(&cx)
            }
            Fault::MoveReload => {
                // Spill one victim by hand so the reload sits right before
                // its use, then swap the two instructions.
                let mut f = a.function.clone();
                let x = Var::new(1); // `x`, used by ops in two blocks
                let mut result = SpillResult::default();
                spill_everywhere(&mut f, x, &mut result);
                let (b, i) = reload_before_use(&f).expect("spill must insert a reload");
                let mut instrs = f.block_instrs_owned(b);
                instrs.swap(i, i + 1);
                f.set_block_instrs(b, &instrs);
                let mut cx = VerifyCtx::at(VerifyLevel::Paranoid, site);
                cx.function = Some(&f);
                verify(&cx)
            }
            Fault::MiscolorVertex => {
                let live = crate::reference::RefLiveness::compute(&a.alloc_function);
                let pairs = crate::reference::interference_pairs(
                    &a.alloc_function,
                    &live,
                    InterferenceKind::Chaitin,
                );
                let key = pairs
                    .iter()
                    .find(|&&k| {
                        let p = Var::new((k >> 32) as usize);
                        let q = Var::new((k & 0xffff_ffff) as usize);
                        a.alloc_assignment.register_of(p).is_some()
                            && a.alloc_assignment.register_of(q).is_some()
                    })
                    .copied()
                    .expect("some interfering pair is fully colored");
                let p = Var::new((key >> 32) as usize);
                let q = Var::new((key & 0xffff_ffff) as usize);
                let r = a.alloc_assignment.register_of(q).unwrap();
                a.alloc_assignment.assign(p, r);
                verify(&alloc_ctx(
                    site,
                    &a.alloc_function,
                    &a.alloc_assignment,
                    a.alloc_k,
                ))
            }
            Fault::RegisterOutOfRange => {
                a.alloc_assignment.assign(Var::new(0), a.alloc_k);
                verify(&alloc_ctx(
                    site,
                    &a.alloc_function,
                    &a.alloc_assignment,
                    a.alloc_k,
                ))
            }
            Fault::MissingAssignment => {
                let mut f = a.alloc_function.clone();
                f.new_var("orphan");
                verify(&alloc_ctx(site, &f, &a.alloc_assignment, a.alloc_k))
            }
            Fault::BreakPhi => {
                let mut f = a.function.clone();
                let join = BlockId::new(3);
                let Instr::Phi { dst, mut args } = f.instr(join, 0).to_instr() else {
                    panic!("join block starts with a phi");
                };
                args[0].0 = join; // join is not its own predecessor
                f.replace_instr(join, 0, Instr::Phi { dst, args });
                let mut cx = VerifyCtx::at(VerifyLevel::Paranoid, site);
                cx.function = Some(&f);
                verify(&cx)
            }
            Fault::DuplicateDef => {
                let mut f = a.function.clone();
                let y = Var::new(2);
                f.push_instr(
                    BlockId::new(1),
                    Instr::Op {
                        dst: Some(y),
                        uses: vec![],
                    },
                );
                let mut cx = VerifyCtx::at(VerifyLevel::Paranoid, site);
                cx.function = Some(&f);
                verify(&cx)
            }
            Fault::CorruptBlockRange => {
                let mut f = a.function.clone();
                let (start, _) = f.raw_block_range(f.entry);
                let len = f.raw_order().len() as u32 - start + 1;
                f.set_raw_block_range(f.entry, start, len);
                let mut cx = VerifyCtx::at(VerifyLevel::Paranoid, site);
                cx.function = Some(&f);
                verify(&cx)
            }
            Fault::UnreachableBlock => {
                let mut f = a.function.clone();
                f.add_block(Terminator::Return { uses: vec![] }, 0);
                let mut cx = VerifyCtx::at(VerifyLevel::Paranoid, site);
                cx.function = Some(&f);
                verify(&cx)
            }
            Fault::BadTerminator => {
                let mut f = a.function.clone();
                let bogus = BlockId::new(f.num_blocks() + 10);
                *f.terminator_mut(BlockId::new(6)) = Terminator::Jump(bogus);
                let mut cx = VerifyCtx::at(VerifyLevel::Paranoid, site);
                cx.function = Some(&f);
                verify(&cx)
            }
            Fault::CorruptLiveness => {
                // `x` is live into the left block; clearing it everywhere
                // breaks the backward-walk equation there.
                a.liveness.apply_spill_rewrite(Var::new(1), &[]);
                let mut cx = VerifyCtx::at(VerifyLevel::Paranoid, site);
                cx.function = Some(&a.function);
                cx.liveness = Some(&a.liveness);
                verify(&cx)
            }
            Fault::CorruptPeo => {
                let last = a.peo.len() - 1;
                a.peo[last] = a.peo[0];
                let mut cx = VerifyCtx::at(VerifyLevel::Paranoid, site);
                cx.chordal = Some(ChordalCtx {
                    graph: &a.ig.graph,
                    peo: Some(&a.peo),
                    claimed_omega: None,
                    clique: None,
                });
                verify(&cx)
            }
            Fault::InflateOmega => {
                let mut cx = VerifyCtx::at(VerifyLevel::Paranoid, site);
                cx.chordal = Some(ChordalCtx {
                    graph: &a.ig.graph,
                    peo: None,
                    claimed_omega: Some(a.omega + 1),
                    clique: Some(&a.clique),
                });
                verify(&cx)
            }
            Fault::ResurrectVictim => {
                let victim = a.victims[0];
                a.spilled.emit_op(BlockId::new(6), None, &[victim]);
                let mut cx = VerifyCtx::at(VerifyLevel::Paranoid, site);
                cx.function = Some(&a.spilled);
                cx.spill = Some(SpillCtx {
                    victims: &a.victims,
                    // Keep the claim honest so only the victim rule fires.
                    claimed_maxlive: a.spilled_maxlive + 1,
                    victims_die: true,
                });
                verify(&cx)
            }
            Fault::UnderclaimMaxlive => {
                let mut cx = VerifyCtx::at(VerifyLevel::Paranoid, site);
                cx.function = Some(&a.spilled);
                cx.spill = Some(SpillCtx {
                    victims: &a.victims,
                    claimed_maxlive: a.spilled_maxlive - 1,
                    victims_die: true,
                });
                verify(&cx)
            }
            Fault::BogusCoalesce => {
                let (u, v) = a.ig.graph.edges().next().expect("graph has edges");
                let classes = vec![vec![u, v]];
                let mut cx = VerifyCtx::at(VerifyLevel::Paranoid, site);
                cx.coalesce = Some(CoalesceCtx {
                    graph: &a.ig.graph,
                    affinities: &[],
                    classes: &classes,
                });
                verify(&cx)
            }
        }
    }
}

fn alloc_ctx<'a>(
    site: &'a str,
    f: &'a Function,
    assignment: &'a RegisterAssignment,
    k: usize,
) -> VerifyCtx<'a> {
    let mut cx = VerifyCtx::at(VerifyLevel::Paranoid, site);
    cx.function = Some(f);
    cx.assume_ssa = false; // the lowered function is out of SSA
    cx.allocation = Some(AllocCtx { assignment, k });
    cx
}

fn non_adjacent_pair(ig: &InterferenceGraph) -> Option<(VertexId, VertexId)> {
    let vertices: Vec<VertexId> = ig.graph.vertices().collect();
    for (i, &u) in vertices.iter().enumerate() {
        for &v in &vertices[i + 1..] {
            if !ig.graph.has_edge(u, v) {
                return Some((u, v));
            }
        }
    }
    None
}

/// Finds a `(block, position)` where a reload (an op defining a fresh
/// variable from no uses) immediately precedes the instruction that uses
/// it.
fn reload_before_use(f: &Function) -> Option<(BlockId, usize)> {
    for b in f.block_ids() {
        let instrs: Vec<InstrView<'_>> = f.block_instrs(b).collect();
        for i in 0..instrs.len().saturating_sub(1) {
            let InstrView::Op {
                dst: Some(d),
                uses: &[],
            } = instrs[i]
            else {
                continue;
            };
            if instrs[i + 1].local_uses().contains(&d) {
                return Some((b, i));
            }
        }
    }
    None
}

/// Runs the suite at [`VerifyLevel::Paranoid`] over every boundary of the
/// *clean* sample artifacts; any violation here is a verifier bug.
pub fn verify_clean_sample() -> Vec<Violation> {
    let a = sample_artifacts();
    let mut out = Vec::new();

    let mut ssa_cx = VerifyCtx::at(VerifyLevel::Paranoid, "clean/ssa");
    ssa_cx.function = Some(&a.function);
    ssa_cx.liveness = Some(&a.liveness);
    ssa_cx.interference = Some(InterferenceCtx {
        ig: &a.ig,
        kind: InterferenceKind::Intersection,
    });
    ssa_cx.chordal = Some(ChordalCtx {
        graph: &a.ig.graph,
        peo: Some(&a.peo),
        claimed_omega: Some(a.omega),
        clique: Some(&a.clique),
    });
    out.extend(verify(&ssa_cx));

    let mut spill_cx = VerifyCtx::at(VerifyLevel::Paranoid, "clean/spill");
    spill_cx.function = Some(&a.spilled);
    spill_cx.liveness = Some(&a.spilled_liveness);
    spill_cx.spill = Some(SpillCtx {
        victims: &a.victims,
        claimed_maxlive: a.spilled_maxlive,
        victims_die: true,
    });
    out.extend(verify(&spill_cx));

    out.extend(verify(&alloc_ctx(
        "clean/alloc",
        &a.alloc_function,
        &a.alloc_assignment,
        a.alloc_k,
    )));
    out
}

/// Deterministic *textual* fault injectors for wire-format instances
/// (DIMACS / challenge files, JSONL request lines).
///
/// Where [`Fault`] corrupts in-memory pipeline artifacts to exercise the
/// verifier, `TextFault` corrupts the *bytes a server receives* to
/// exercise the parsers and the request path: every variant must turn into
/// a typed parse/validation error (or a structured protocol error), never
/// a panic or an allocation blow-up.  The E18 chaos soak injects these
/// into its request trace at a configurable rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextFault {
    /// Cut the text roughly in half mid-line (a truncated upload).
    TruncateTail,
    /// Multiply a declared count on the problem line (count mismatch).
    InflateDeclaredCount,
    /// Declare an absurd vertex count (hostile allocation-sizing input).
    HugeDeclaredCount,
    /// Rewrite the first edge to reference an out-of-range vertex.
    OutOfRangeVertex,
    /// Rewrite the first edge into a self-loop.
    SelfLoop,
    /// Replace a numeric field with a non-numeric token.
    NonNumericField,
    /// Append a line with an unknown type marker.
    UnknownLineType,
    /// Splice raw non-format bytes into the middle of the text.
    GarbageBytes,
}

impl TextFault {
    /// Every textual fault, in a stable order (index with a seeded draw).
    pub const ALL: [TextFault; 8] = [
        TextFault::TruncateTail,
        TextFault::InflateDeclaredCount,
        TextFault::HugeDeclaredCount,
        TextFault::OutOfRangeVertex,
        TextFault::SelfLoop,
        TextFault::NonNumericField,
        TextFault::UnknownLineType,
        TextFault::GarbageBytes,
    ];

    /// A stable identifier for reports.
    pub fn name(self) -> &'static str {
        match self {
            TextFault::TruncateTail => "truncate-tail",
            TextFault::InflateDeclaredCount => "inflate-declared-count",
            TextFault::HugeDeclaredCount => "huge-declared-count",
            TextFault::OutOfRangeVertex => "out-of-range-vertex",
            TextFault::SelfLoop => "self-loop",
            TextFault::NonNumericField => "non-numeric-field",
            TextFault::UnknownLineType => "unknown-line-type",
            TextFault::GarbageBytes => "garbage-bytes",
        }
    }

    /// Applies the fault to a DIMACS/challenge-style instance text.
    ///
    /// Deterministic: the output depends only on `self` and `text`.  The
    /// result is guaranteed to differ from well-formed input (each variant
    /// introduces a violation the parsers are specified to reject), though
    /// on degenerate inputs (e.g. empty text) some variants reduce to
    /// appending garbage — still a guaranteed parse error.
    pub fn apply(self, text: &str) -> String {
        match self {
            TextFault::TruncateTail => {
                let cut = text.len() / 2;
                // Respect UTF-8 boundaries; instance text is ASCII anyway.
                let mut cut = cut.min(text.len());
                while cut > 0 && !text.is_char_boundary(cut) {
                    cut -= 1;
                }
                text.get(..cut).unwrap_or("").to_string()
            }
            TextFault::InflateDeclaredCount => rewrite_problem_line(text, |fields| {
                if let Some(last) = fields.last_mut() {
                    last.push('7');
                }
            }),
            TextFault::HugeDeclaredCount => rewrite_problem_line(text, |fields| {
                if let Some(first) = fields.first_mut() {
                    *first = "999999999999".to_string();
                }
            }),
            TextFault::OutOfRangeVertex => rewrite_first_edge(text, "e 1 999999"),
            TextFault::SelfLoop => rewrite_first_edge(text, "e 1 1"),
            TextFault::NonNumericField => rewrite_first_edge(text, "e one 2"),
            TextFault::UnknownLineType => format!("{text}z 1 2\n"),
            TextFault::GarbageBytes => {
                let mid = {
                    let mut m = text.len() / 2;
                    while m > 0 && !text.is_char_boundary(m) {
                        m -= 1;
                    }
                    m
                };
                format!("{}\u{1}\u{2}!!garbage!!{}", &text[..mid], &text[mid..])
            }
        }
    }
}

/// Rewrites the numeric fields of the first `p ...` problem line.
fn rewrite_problem_line(text: &str, edit: impl Fn(&mut Vec<String>)) -> String {
    let mut done = false;
    let mut out = String::new();
    for line in text.lines() {
        if !done && line.trim_start().starts_with('p') {
            let mut tokens: Vec<String> = line.split_whitespace().map(str::to_string).collect();
            // Keep the `p <kind>` prefix, edit the numeric tail.
            let mut tail: Vec<String> = tokens.split_off(2.min(tokens.len()));
            edit(&mut tail);
            tokens.extend(tail);
            out.push_str(&tokens.join(" "));
            done = true;
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    if !done {
        // No problem line to corrupt: prepend a hostile one instead.
        return format!("p edge 999999999999 0\n{out}");
    }
    out
}

/// Replaces the first `e ...` line with `replacement` (appends one when
/// the text has no edge lines — a guaranteed count mismatch either way).
fn rewrite_first_edge(text: &str, replacement: &str) -> String {
    let mut done = false;
    let mut out = String::new();
    for line in text.lines() {
        if !done && line.trim_start().starts_with('e') {
            out.push_str(replacement);
            done = true;
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    if !done {
        out.push_str(replacement);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sample_has_no_violations() {
        let violations = verify_clean_sample();
        assert!(
            violations.is_empty(),
            "clean pipeline flagged: {violations:#?}"
        );
    }

    #[test]
    fn every_fault_is_caught_with_the_expected_rule() {
        for fault in Fault::ALL {
            let violations = fault.inject_and_verify();
            let expected = fault.expected_rule();
            assert!(
                violations.iter().any(|v| v.rule == expected),
                "{fault:?}: expected rule {expected}, got {violations:#?}"
            );
        }
    }

    #[test]
    fn every_text_fault_breaks_a_valid_challenge_file() {
        // A clean 4-vertex coalescing instance that both parsers accept.
        let clean = "p coalesce 4 2 1\nk 3\ne 1 2\ne 3 4\na 1 3 5\n";
        assert!(coalesce_graph::format::from_challenge(clean).is_ok());
        for fault in TextFault::ALL {
            let corrupted = fault.apply(clean);
            assert!(
                coalesce_graph::format::from_challenge(&corrupted).is_err(),
                "{}: corrupted text must not parse:\n{corrupted}",
                fault.name()
            );
            // Deterministic: same fault + text, same bytes.
            assert_eq!(corrupted, fault.apply(clean), "{}", fault.name());
        }
    }

    #[test]
    fn sample_program_is_strict_ssa_with_pressure() {
        let f = sample_program();
        assert!(coalesce_ir::ssa::is_strict(&f));
        let live = Liveness::compute(&f);
        assert_eq!(live.maxlive_precise(&f), 5);
    }
}
