//! Independent reference implementations the checkers compare against.
//!
//! Nothing here calls the analyses under audit ([`coalesce_ir::dom`],
//! [`coalesce_ir::liveness`], [`coalesce_ir::interference`],
//! [`coalesce_graph::chordal`]): reachability is a fresh DFS, dominators an
//! iterative bitvector dataflow, liveness a `BTreeSet` worklist fixpoint
//! straight from the transfer equations, interference a `HashSet` of
//! normalized pairs built from the reference liveness, and the PEO parent
//! test runs over an adjacency copy extracted once from the subject graph's
//! edge list.  Slower than the hot path by design — the redundancy is the
//! point.

use coalesce_graph::{Graph, VertexId};
use coalesce_ir::function::{BlockId, Function, InstrView};
use coalesce_ir::interference::InterferenceKind;
use coalesce_ir::Var;
use std::collections::{BTreeSet, HashSet, VecDeque};

/// Normalized unordered pair key over dense indices.
pub fn pair_key(a: usize, b: usize) -> u64 {
    let (x, y) = if a <= b { (a, b) } else { (b, a) };
    ((x as u64) << 32) | y as u64
}

/// Reference control-flow facts: successor/predecessor lists restricted to
/// in-range targets, reachability from the entry, and a reverse postorder
/// of the reachable blocks.
#[derive(Debug)]
pub struct RefCfg {
    /// In-range successors per block.
    pub succs: Vec<Vec<usize>>,
    /// Predecessors per block (derived from `succs`).
    pub preds: Vec<Vec<usize>>,
    /// Whether each block is reachable from the entry.
    pub reachable: Vec<bool>,
    /// Reachable blocks in reverse postorder.
    pub rpo: Vec<usize>,
}

impl RefCfg {
    /// Builds the reference CFG facts with a fresh iterative DFS.
    pub fn build(f: &Function) -> Self {
        let n = f.num_blocks();
        let mut succs = vec![Vec::new(); n];
        for (b, out) in succs.iter_mut().enumerate() {
            for s in f.terminator(BlockId::new(b)).successors() {
                if s.index() < n {
                    out.push(s.index());
                }
            }
        }
        let mut preds = vec![Vec::new(); n];
        for (b, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(b);
            }
        }
        let mut reachable = vec![false; n];
        let mut postorder = Vec::new();
        if n > 0 && f.entry.index() < n {
            let entry = f.entry.index();
            reachable[entry] = true;
            let mut stack = vec![(entry, 0usize)];
            while let Some((b, i)) = stack.pop() {
                if i < succs[b].len() {
                    stack.push((b, i + 1));
                    let s = succs[b][i];
                    if !reachable[s] {
                        reachable[s] = true;
                        stack.push((s, 0));
                    }
                } else {
                    postorder.push(b);
                }
            }
        }
        postorder.reverse();
        RefCfg {
            succs,
            preds,
            reachable,
            rpo: postorder,
        }
    }
}

/// Reference dominators: the classic iterative bitvector dataflow
/// `dom(b) = {b} ∪ ⋂_{p ∈ preds(b)} dom(p)` run to a fixpoint over the
/// reference reverse postorder.
#[derive(Debug)]
pub struct RefDoms {
    words: usize,
    dom: Vec<Vec<u64>>,
}

impl RefDoms {
    /// Computes dominator sets for the reachable blocks of `f`.
    pub fn compute(f: &Function, cfg: &RefCfg) -> Self {
        let n = f.num_blocks();
        let words = n.div_ceil(64);
        let mut dom = vec![vec![u64::MAX; words]; n];
        if n == 0 || f.entry.index() >= n {
            return RefDoms { words, dom };
        }
        let entry = f.entry.index();
        dom[entry] = vec![0; words];
        dom[entry][entry / 64] |= 1 << (entry % 64);
        let mut changed = true;
        let mut meet = vec![0u64; words];
        while changed {
            changed = false;
            for &b in &cfg.rpo {
                if b == entry {
                    continue;
                }
                meet.fill(u64::MAX);
                for &p in &cfg.preds[b] {
                    if cfg.reachable[p] {
                        for (m, d) in meet.iter_mut().zip(&dom[p]) {
                            *m &= d;
                        }
                    }
                }
                meet[b / 64] |= 1 << (b % 64);
                if meet != dom[b] {
                    dom[b].copy_from_slice(&meet);
                    changed = true;
                }
            }
        }
        RefDoms { words, dom }
    }

    /// `true` if block `a` dominates block `b` (reflexive).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        debug_assert!(a / 64 < self.words);
        self.dom[b][a / 64] >> (a % 64) & 1 == 1
    }
}

/// The φ definitions at the head of block `b`.
fn phi_defs(f: &Function, b: usize) -> Vec<Var> {
    f.phis(BlockId::new(b)).filter_map(|p| p.def()).collect()
}

/// The live-out set of block `b` from the transfer equation, given any
/// per-block live-in lookup:
/// `live-out(b) = ⋃_{s ∈ succ(b)} (live-in(s) \ phidefs(s)) ∪ phiuses(s from b)`.
pub fn transfer_out(
    f: &Function,
    b: usize,
    live_in_of: impl Fn(usize) -> BTreeSet<Var>,
) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    for s in f.successors(BlockId::new(b)) {
        let mut flow = live_in_of(s.index());
        for phi in f.phis(s) {
            if let InstrView::Phi { dst, args } = phi {
                flow.remove(&dst);
                for a in args {
                    if a.pred.index() == b {
                        flow.insert(a.value);
                    }
                }
            }
        }
        out.extend(flow);
    }
    out
}

/// The live-in set of block `b` from a backward walk over its instructions,
/// starting from `out` (φ definitions end up excluded — the walk removes
/// them and φs have no local uses).
pub fn transfer_in(f: &Function, b: usize, out: &BTreeSet<Var>) -> BTreeSet<Var> {
    let block = BlockId::new(b);
    let mut live = out.clone();
    live.extend(f.terminator(block).uses());
    for instr in f.block_instrs(block).rev() {
        if let Some(d) = instr.def() {
            live.remove(&d);
        }
        live.extend(instr.local_uses().iter().copied());
    }
    live
}

/// Reference live-variable analysis: a worklist fixpoint over the transfer
/// equations with per-block `BTreeSet`s.
#[derive(Debug)]
pub struct RefLiveness {
    /// Live-in per block (φ results excluded).
    pub live_in: Vec<BTreeSet<Var>>,
    /// Live-out per block.
    pub live_out: Vec<BTreeSet<Var>>,
}

impl RefLiveness {
    /// Runs the fixpoint on `f`, seeding every block.
    pub fn compute(f: &Function) -> Self {
        let n = f.num_blocks();
        let mut live = RefLiveness {
            live_in: vec![BTreeSet::new(); n],
            live_out: vec![BTreeSet::new(); n],
        };
        let cfg = RefCfg::build(f);
        let mut queued = vec![true; n];
        let mut queue: VecDeque<usize> = (0..n).rev().collect();
        while let Some(b) = queue.pop_front() {
            queued[b] = false;
            let out = transfer_out(f, b, |s| live.live_in[s].clone());
            let inn = transfer_in(f, b, &out);
            live.live_out[b] = out;
            if inn != live.live_in[b] {
                live.live_in[b] = inn;
                for &p in &cfg.preds[b] {
                    if !queued[p] {
                        queued[p] = true;
                        queue.push_back(p);
                    }
                }
            }
        }
        live
    }

    /// `true` if `v` is live at any block boundary.
    pub fn live_at_any_boundary(&self, v: Var) -> bool {
        self.live_in.iter().any(|s| s.contains(&v)) || self.live_out.iter().any(|s| s.contains(&v))
    }

    /// Reference `Maxlive` over every program point, mirroring the audited
    /// semantics: pressure at every between-instruction point, a defined
    /// value occupies a register at its definition point even when dead,
    /// and φ results all count together with the block's live-in.
    pub fn maxlive_precise(&self, f: &Function) -> usize {
        let mut max = 0;
        for b in 0..f.num_blocks() {
            let block = BlockId::new(b);
            let mut live = self.live_out[b].clone();
            live.extend(f.terminator(block).uses());
            max = max.max(live.len());
            let instrs: Vec<InstrView<'_>> = f.block_instrs(block).collect();
            for instr in instrs.iter().rev() {
                if let Some(d) = instr.def() {
                    if !instr.is_phi() {
                        max = max.max(live.len() + usize::from(!live.contains(&d)));
                    }
                    live.remove(&d);
                }
                live.extend(instr.local_uses().iter().copied());
                max = max.max(live.len());
            }
            let phis = phi_defs(f, b).len();
            if phis > 0 {
                max = max.max(self.live_in[b].len() + phis);
            }
        }
        max
    }
}

/// The set of interference pairs the chosen definition demands, built from
/// the reference liveness: φ results pairwise and against the block's
/// live-in, and every definition against the set live after it (Chaitin
/// interference exempts a copy's source at the copy itself).
pub fn interference_pairs(
    f: &Function,
    live: &RefLiveness,
    kind: InterferenceKind,
) -> HashSet<u64> {
    let mut pairs = HashSet::new();
    let mut add = |a: Var, b: Var| {
        pairs.insert(pair_key(a.index(), b.index()));
    };
    for b in 0..f.num_blocks() {
        let block = BlockId::new(b);
        let defs = phi_defs(f, b);
        for (i, &p) in defs.iter().enumerate() {
            for &q in &defs[i + 1..] {
                add(p, q);
            }
            for &v in &live.live_in[b] {
                if v != p {
                    add(p, v);
                }
            }
        }
        let mut after = live.live_out[b].clone();
        after.extend(f.terminator(block).uses());
        let instrs: Vec<InstrView<'_>> = f.block_instrs(block).collect();
        for instr in instrs.iter().rev() {
            if let Some(d) = instr.def() {
                for &v in &after {
                    if v == d {
                        continue;
                    }
                    if kind == InterferenceKind::Chaitin {
                        if let InstrView::Copy { src, .. } = instr {
                            if v == *src {
                                continue;
                            }
                        }
                    }
                    add(d, v);
                }
                after.remove(&d);
            }
            after.extend(instr.local_uses().iter().copied());
        }
    }
    pairs
}

/// Adjacency copy of a subject graph, extracted once from its vertex and
/// edge iterators so certificate checks never query the subject's own
/// `has_edge`.
#[derive(Debug)]
pub struct RefGraph {
    /// Vertex-id capacity (dense index bound).
    pub capacity: usize,
    /// Which indices are live vertices.
    pub live: Vec<bool>,
    /// Number of live vertices.
    pub num_live: usize,
    /// Neighbor lists per index.
    pub adj: Vec<Vec<usize>>,
    /// Normalized edge pairs.
    pub pairs: HashSet<u64>,
}

impl RefGraph {
    /// Extracts the adjacency of `g`.
    pub fn build(g: &Graph) -> Self {
        let capacity = g.capacity();
        let mut live = vec![false; capacity];
        let mut num_live = 0;
        for v in g.vertices() {
            live[v.index()] = true;
            num_live += 1;
        }
        let mut adj = vec![Vec::new(); capacity];
        let mut pairs = HashSet::new();
        for (a, b) in g.edges() {
            if pairs.insert(pair_key(a.index(), b.index())) {
                adj[a.index()].push(b.index());
                adj[b.index()].push(a.index());
            }
        }
        RefGraph {
            capacity,
            live,
            num_live,
            adj,
            pairs,
        }
    }

    /// `true` if the extracted edge set joins `a` and `b`.
    pub fn has(&self, a: usize, b: usize) -> bool {
        self.pairs.contains(&pair_key(a, b))
    }
}

/// Checks that `order` is a perfect elimination ordering of the extracted
/// graph via the Golumbic parent test, returning the clique number the
/// ordering implies (`1 + max` later-neighborhood size) on success.
pub fn check_peo(rg: &RefGraph, order: &[VertexId]) -> Result<usize, String> {
    let mut pos = vec![usize::MAX; rg.capacity];
    for (i, &v) in order.iter().enumerate() {
        if v.index() >= rg.capacity || !rg.live[v.index()] {
            return Err(format!("order element {v:?} is not a live vertex"));
        }
        if pos[v.index()] != usize::MAX {
            return Err(format!("vertex {v:?} appears twice in the ordering"));
        }
        pos[v.index()] = i;
    }
    if order.len() != rg.num_live {
        return Err(format!(
            "ordering covers {} of {} vertices",
            order.len(),
            rg.num_live
        ));
    }
    let mut omega = usize::from(!order.is_empty());
    for &v in order {
        let i = pos[v.index()];
        let later: Vec<usize> = rg.adj[v.index()]
            .iter()
            .copied()
            .filter(|&u| pos[u] > i)
            .collect();
        omega = omega.max(later.len() + 1);
        let Some(&parent) = later.iter().min_by_key(|&&u| pos[u]) else {
            continue;
        };
        for &u in &later {
            if u != parent && !rg.has(parent, u) {
                return Err(format!(
                    "later neighbors {u} and {parent} of vertex {} are not adjacent",
                    v.index()
                ));
            }
        }
    }
    Ok(omega)
}

/// Checks that `clique` is a set of `claimed` distinct, pairwise-adjacent
/// live vertices.
pub fn check_clique(rg: &RefGraph, clique: &[VertexId], claimed: usize) -> Result<(), String> {
    if clique.len() != claimed {
        return Err(format!(
            "witness has {} vertices but omega claim is {claimed}",
            clique.len()
        ));
    }
    let mut seen = HashSet::new();
    for &v in clique {
        if v.index() >= rg.capacity || !rg.live[v.index()] {
            return Err(format!("witness vertex {v:?} is not a live vertex"));
        }
        if !seen.insert(v.index()) {
            return Err(format!("witness vertex {v:?} repeated"));
        }
    }
    for (i, &a) in clique.iter().enumerate() {
        for &b in &clique[i + 1..] {
            if !rg.has(a.index(), b.index()) {
                return Err(format!(
                    "witness vertices {} and {} are not adjacent",
                    a.index(),
                    b.index()
                ));
            }
        }
    }
    Ok(())
}
