//! Theorem 5 in action: polynomial incremental conservative coalescing on
//! chordal (SSA-shaped) interference graphs, compared against the
//! exponential exact solver.
//!
//! Run with `cargo run --example chordal_incremental`.

use coalesce_core::incremental::{chordal_incremental, incremental_exact};
use coalesce_gen::graphs::random_interval_graph;
use coalesce_graph::{chordal, VertexId};
use std::time::Instant;

fn main() {
    println!(
        "{:>6} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "n", "omega", "queries", "poly (ms)", "exact (ms)", "agree"
    );
    for &n in &[10usize, 20, 30, 40] {
        let mut rng = coalesce_gen::rng(n as u64);
        let (graph, _) = random_interval_graph(n, 3 * n, n / 2 + 2, &mut rng);
        let omega = chordal::chordal_clique_number(&graph).expect("interval graphs are chordal");
        let k = omega;

        let pairs: Vec<(VertexId, VertexId)> = (0..n)
            .flat_map(|a| ((a + 1)..n).map(move |b| (VertexId::new(a), VertexId::new(b))))
            .filter(|&(a, b)| !graph.has_edge(a, b))
            .take(50)
            .collect();

        let start = Instant::now();
        let fast: Vec<bool> = pairs
            .iter()
            .map(|&(a, b)| {
                chordal_incremental(&graph, k, a, b)
                    .expect("chordal, k >= omega")
                    .is_coalescible()
            })
            .collect();
        let fast_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let slow: Vec<bool> = pairs
            .iter()
            .map(|&(a, b)| incremental_exact(&graph, k, a, b).is_coalescible())
            .collect();
        let slow_ms = start.elapsed().as_secs_f64() * 1e3;

        let agree = fast.iter().zip(&slow).filter(|(f, s)| f == s).count();
        println!(
            "{:>6} {:>8} {:>10} {:>12.2} {:>12.2} {:>7}/{}",
            n,
            omega,
            pairs.len(),
            fast_ms,
            slow_ms,
            agree,
            pairs.len()
        );
    }
    println!();
    println!("`agree` must always equal the number of queries: the clique-tree");
    println!("interval-covering algorithm of Theorem 5 matches the exact answer.");
}
