//! Challenge-style strategy comparison (experiment E8 in miniature).
//!
//! Generates several coalescing-challenge-style instances (programs spilled
//! to `Maxlive ≤ k` and translated out of SSA) and prints, for every
//! coalescing strategy, how much affinity weight it removes and how many
//! spills the IRC allocator reports afterwards.
//!
//! Run with `cargo run --example coalescing_challenge`.

use coalesce_core::conservative::{conservative_coalesce, ConservativeRule};
use coalesce_core::{aggressive_heuristic, optimistic_coalesce};
use coalesce_gen::challenge::{challenge_instance, ChallengeParams};
use coalesce_gen::programs::ProgramParams;

fn main() {
    let params = ChallengeParams {
        registers: 4,
        program: ProgramParams {
            diamonds: 5,
            ops_per_block: 4,
            pressure: 7,
            phis_per_join: 2,
        },
    };
    println!(
        "{:<10} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "instance", "affs", "k", "aggr%", "briggs%", "george%", "brute%", "optim%"
    );
    for seed in 0..8u64 {
        let mut rng = coalesce_gen::rng(seed);
        let instance = challenge_instance(&params, &mut rng);
        let ag = &instance.affinity_graph;
        let k = instance.registers;
        let pct = |coalesced_weight: u64| {
            if ag.total_weight() == 0 {
                100.0
            } else {
                100.0 * coalesced_weight as f64 / ag.total_weight() as f64
            }
        };
        let aggressive = aggressive_heuristic(ag);
        let briggs = conservative_coalesce(ag, k, ConservativeRule::Briggs);
        let george = conservative_coalesce(ag, k, ConservativeRule::George);
        let brute = conservative_coalesce(ag, k, ConservativeRule::BruteForce);
        let optimistic = optimistic_coalesce(ag, k);
        println!(
            "{:<10} {:>6} {:>6} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            format!("seed {seed}"),
            ag.num_affinities(),
            k,
            pct(aggressive.stats.coalesced_weight),
            pct(briggs.stats.coalesced_weight),
            pct(george.stats.coalesced_weight),
            pct(brute.stats.coalesced_weight),
            pct(optimistic.stats.coalesced_weight),
        );
    }
    println!();
    println!("aggr ignores colorability; the conservative columns keep the graph");
    println!("greedy-k-colorable; optimistic coalesces everything then de-coalesces.");
}
