//! Round-trip a coalescing instance through the textual challenge format.
//!
//! The Appel–George coalescing challenge distributes its instances as text
//! files; this example shows the equivalent workflow with this library:
//! generate a challenge-style instance, serialise it (interferences,
//! weighted affinities and the register count), parse it back, and run the
//! coalescing strategies on the parsed copy.
//!
//! ```text
//! cargo run --example graph_formats
//! ```

use coalesce_core::affinity::{Affinity, AffinityGraph};
use coalesce_core::conservative::{conservative_coalesce, ConservativeRule};
use coalesce_core::optimistic::optimistic_coalesce;
use coalesce_gen::challenge::{challenge_instance, ChallengeParams};
use coalesce_graph::format::{from_challenge, to_challenge, ChallengeFile};
use coalesce_graph::stats::GraphStats;

fn main() {
    let params = ChallengeParams::default();
    let mut rng = coalesce_gen::rng(7);
    let instance = challenge_instance(&params, &mut rng);

    // Serialise the instance.
    let file = ChallengeFile {
        graph: instance.affinity_graph.graph.clone(),
        affinities: instance
            .affinity_graph
            .affinities
            .iter()
            .map(|a| (a.a, a.b, a.weight))
            .collect(),
        registers: Some(instance.registers),
    };
    let text = to_challenge(&file);
    println!(
        "serialised instance: {} lines, {} interferences, {} affinities",
        text.lines().count(),
        file.graph.num_edges(),
        file.affinities.len()
    );

    // Parse it back and rebuild the affinity graph.
    let parsed = from_challenge(&text).expect("the writer always produces parseable output");
    assert_eq!(parsed.graph.num_edges(), file.graph.num_edges());
    assert_eq!(parsed.affinities.len(), file.affinities.len());
    let affinities = parsed
        .affinities
        .iter()
        .map(|&(a, b, w)| Affinity::weighted(a, b, w))
        .collect();
    let ag = AffinityGraph::new(parsed.graph.clone(), affinities);
    let k = parsed.registers.expect("the writer recorded k");

    println!("structure: {}", GraphStats::compute(&ag.graph, 24));

    // Run the strategies on the parsed copy.
    for rule in [
        ConservativeRule::Briggs,
        ConservativeRule::BriggsGeorge,
        ConservativeRule::ExtendedGeorge,
        ConservativeRule::BruteForce,
    ] {
        let res = conservative_coalesce(&ag, k, rule);
        println!(
            "{rule:?}: coalesced {}/{} affinities (weight {}/{})",
            res.stats.coalesced,
            ag.num_affinities(),
            res.stats.coalesced_weight,
            ag.total_weight()
        );
    }
    let optimistic = optimistic_coalesce(&ag, k);
    println!(
        "Optimistic: coalesced {}/{} affinities (weight {}/{})",
        optimistic.stats.coalesced,
        ag.num_affinities(),
        optimistic.stats.coalesced_weight,
        ag.total_weight()
    );
}
