//! Demonstrates the four NP-completeness reductions of the paper on small
//! instances, cross-checking each against the exact solvers.
//!
//! Run with `cargo run --example npc_reductions`.

use coalesce_core::aggressive::aggressive_exact;
use coalesce_core::incremental::incremental_exact;
use coalesce_core::optimistic::decoalesce_exact;
use coalesce_graph::{Graph, VertexId};
use coalesce_reduce::{colorability, multiway_cut, sat, vertex_cover};

fn v(i: usize) -> VertexId {
    VertexId::new(i)
}

fn main() {
    // --- Theorem 2: multiway cut -> aggressive coalescing -----------------
    let mut g = Graph::new(5);
    g.add_edge(v(0), v(3));
    g.add_edge(v(1), v(3));
    g.add_edge(v(2), v(4));
    g.add_edge(v(3), v(4));
    let mc = multiway_cut::MultiwayCutInstance::new(g, vec![v(0), v(1), v(2)]);
    let cut = mc.minimum_cut();
    let reduction = multiway_cut::reduce_to_aggressive(&mc);
    let coalescing = aggressive_exact(&reduction.instance);
    println!("[Thm 2] minimum multiway cut = {cut}");
    println!(
        "[Thm 2] optimal aggressive coalescing leaves {} affinities uncoalesced (must match)",
        coalescing.stats.uncoalesced()
    );

    // --- Theorem 3: k-colorability -> conservative coalescing -------------
    let c5 = Graph::with_edges(5, (0..5).map(|i| (v(i), v((i + 1) % 5))));
    let reduction = colorability::reduce_to_conservative(&c5);
    for k in [2, 3] {
        let result = coalesce_core::conservative::conservative_exact(&reduction.instance, k, false);
        println!(
            "[Thm 3] C5 with k = {k}: all moves coalesced = {} (k-colorable = {})",
            result.stats.uncoalesced() == 0,
            colorability::is_k_colorable(&c5, k)
        );
    }

    // --- Theorem 4: 3SAT -> incremental conservative coalescing -----------
    let satisfiable = sat::Cnf::new(
        3,
        vec![
            vec![
                sat::Literal::pos(0),
                sat::Literal::pos(1),
                sat::Literal::pos(2),
            ],
            vec![sat::Literal::neg(0), sat::Literal::neg(1)],
        ],
    );
    let unsatisfiable = sat::Cnf::new(
        1,
        vec![vec![sat::Literal::pos(0)], vec![sat::Literal::neg(0)]],
    );
    for (name, formula) in [
        ("satisfiable", satisfiable),
        ("unsatisfiable", unsatisfiable),
    ] {
        let reduction = sat::reduce_3sat_to_incremental(&formula);
        let answer = incremental_exact(&reduction.graph, 3, reduction.x, reduction.y);
        println!(
            "[Thm 4] {name} 3SAT: formula SAT = {}, affinity (x0, F) coalescible = {}",
            formula.is_satisfiable(),
            answer.is_coalescible()
        );
    }

    // --- Theorem 6: vertex cover -> optimistic de-coalescing --------------
    let square = Graph::with_edges(4, (0..4).map(|i| (v(i), v((i + 1) % 4))));
    let vc = vertex_cover::VertexCoverInstance::new(square);
    let cover = vc.minimum_cover();
    let reduction = vertex_cover::reduce_to_optimistic(&vc);
    let (decoalesced, _) = decoalesce_exact(&reduction.instance, reduction.k)
        .expect("reduction graph is greedy-4-colorable");
    println!("[Thm 6] minimum vertex cover of C4 = {cover}");
    println!("[Thm 6] minimum number of de-coalesced affinities = {decoalesced} (must match)");
}
