//! Out-of-SSA translation as aggressive coalescing.
//!
//! Generates a random SSA program, translates it out of SSA (which inserts
//! register-to-register moves for the φ-functions, splitting critical edges
//! and sequentialising parallel copies), and then measures how many of
//! those moves each coalescing strategy removes — the §1/§3 story of the
//! paper.
//!
//! Run with `cargo run --example out_of_ssa`.

use coalesce_core::affinity::AffinityGraph;
use coalesce_core::conservative::{conservative_coalesce, ConservativeRule};
use coalesce_core::{aggressive_exact, aggressive_heuristic};
use coalesce_gen::programs::{random_ssa_program, ProgramParams};
use coalesce_ir::interference::InterferenceGraph;
use coalesce_ir::liveness::Liveness;
use coalesce_ir::out_of_ssa;

fn main() {
    let params = ProgramParams {
        diamonds: 3,
        ops_per_block: 3,
        pressure: 4,
        phis_per_join: 2,
    };
    let mut rng = coalesce_gen::rng(2024);
    let mut function = random_ssa_program(&params, &mut rng);
    println!("=== SSA program ===\n{function}");

    let stats = out_of_ssa::destruct_ssa(&mut function);
    println!(
        "out-of-SSA: {} phis removed, {} copies inserted, {} critical edges split, {} temps",
        stats.phis_removed, stats.copies_inserted, stats.split_edges, stats.temps_introduced
    );
    println!("=== after out-of-SSA ===\n{function}");

    let liveness = Liveness::compute(&function);
    let k = liveness.maxlive_precise(&function);
    let ig = InterferenceGraph::build(&function, &liveness);
    let instance = AffinityGraph::from_interference(&ig);
    println!(
        "interference graph: {} vertices, {} edges, {} affinities (total weight {})",
        ig.graph.num_vertices(),
        ig.graph.num_edges(),
        instance.num_affinities(),
        instance.total_weight()
    );

    let heuristic = aggressive_heuristic(&instance);
    println!(
        "aggressive (heuristic): {}/{} moves removed",
        heuristic.stats.coalesced, heuristic.stats.total
    );
    if instance.num_affinities() <= 20 {
        let exact = aggressive_exact(&instance);
        println!(
            "aggressive (exact):     {}/{} moves removed",
            exact.stats.coalesced, exact.stats.total
        );
    }
    let conservative = conservative_coalesce(&instance, k, ConservativeRule::BriggsGeorge);
    println!(
        "conservative (Briggs+George, k = {k}): {}/{} moves removed",
        conservative.stats.coalesced, conservative.stats.total
    );
}
