//! Quickstart: build a tiny program, extract its interference graph and
//! affinities, and run the four coalescing strategies of the paper on it.
//!
//! Run with `cargo run --example quickstart`.

use coalesce_core::affinity::AffinityGraph;
use coalesce_core::conservative::{conservative_coalesce, ConservativeRule};
use coalesce_core::{aggressive_heuristic, optimistic_coalesce};
use coalesce_ir::function::FunctionBuilder;
use coalesce_ir::interference::InterferenceGraph;
use coalesce_ir::liveness::Liveness;

fn main() {
    // A diamond with a φ: the classic source of register-to-register moves.
    let mut b = FunctionBuilder::new("quickstart");
    let entry = b.entry_block();
    let (then_blk, else_blk, join) = (b.new_block(), b.new_block(), b.new_block());
    let x = b.def(entry, "x");
    let c = b.def(entry, "c");
    b.branch(entry, c, then_blk, else_blk);
    let y = b.op(then_blk, "y", &[x]);
    b.jump(then_blk, join);
    let z = b.op(else_blk, "z", &[x]);
    b.jump(else_blk, join);
    let w = b.phi(join, "w", &[(then_blk, y), (else_blk, z)]);
    let out = b.copy(join, "out", w);
    b.ret(join, &[out]);
    let function = b.finish();

    println!("=== program ===\n{function}");

    let liveness = Liveness::compute(&function);
    println!("Maxlive = {}", liveness.maxlive_precise(&function));

    let ig = InterferenceGraph::build(&function, &liveness);
    println!(
        "interference graph: {} vertices, {} edges, {} affinities",
        ig.graph.num_vertices(),
        ig.graph.num_edges(),
        ig.affinities.len()
    );

    let instance = AffinityGraph::from_interference(&ig);
    let k = 2;

    let aggressive = aggressive_heuristic(&instance);
    println!(
        "aggressive coalescing:   {}/{} moves removed",
        aggressive.stats.coalesced, aggressive.stats.total
    );

    for rule in [
        ConservativeRule::Briggs,
        ConservativeRule::George,
        ConservativeRule::BriggsGeorge,
        ConservativeRule::BruteForce,
    ] {
        let result = conservative_coalesce(&instance, k, rule);
        println!(
            "conservative ({rule:?}): {}/{} moves removed (k = {k})",
            result.stats.coalesced, result.stats.total
        );
    }

    let optimistic = optimistic_coalesce(&instance, k);
    println!(
        "optimistic coalescing:   {}/{} moves removed (k = {k})",
        optimistic.stats.coalesced, optimistic.stats.total
    );

    let allocation = coalesce_core::irc::allocate(&instance, k);
    println!(
        "IRC allocation with k = {k}: {} spills, {} moves coalesced",
        allocation.num_spills(),
        allocation.stats.coalesced
    );
}
