//! Compare the end-to-end register allocators on generated programs.
//!
//! This is the executable version of the paper's framing question: for the
//! same program and the same number of registers, how do a Chaitin–Briggs
//! allocator and the two-phase SSA-based allocator (with different
//! coalescing strategies in its second phase) compare in spills and in
//! remaining move instructions?
//!
//! ```text
//! cargo run --example register_allocators
//! ```

use coalesce_alloc::pipeline::{compare_allocators, comparison_table};
use coalesce_gen::programs::{random_ssa_program, ProgramParams};
use coalesce_ir::liveness::Liveness;

fn main() {
    let params = ProgramParams {
        diamonds: 4,
        ops_per_block: 4,
        pressure: 6,
        phis_per_join: 2,
    };

    for (seed, k) in [(1u64, 4usize), (2, 4), (3, 6), (4, 8)] {
        let mut rng = coalesce_gen::rng(seed);
        let f = random_ssa_program(&params, &mut rng);
        let maxlive = Liveness::compute(&f).maxlive_precise(&f);
        println!(
            "== program seed {seed}: {} blocks, {} variables, Maxlive {maxlive}, k = {k}",
            f.num_blocks(),
            f.num_vars()
        );
        let reports = compare_allocators(&f, k);
        print!("{}", comparison_table(&reports));
        for report in &reports {
            assert!(
                report.valid,
                "{} produced an invalid allocation",
                report.kind
            );
        }
        println!();
    }
    println!("every configuration produced a valid allocation");
}
