//! The splitting / coalescing interplay.
//!
//! §1 of the paper: splitting (adding register-to-register moves) can help
//! the allocator — shorter live ranges are easier to color or to spill
//! selectively — but "it is very hard to control the interplay between
//! spilling and splitting/coalescing".  This example makes that tension
//! concrete: it splits every live range at block boundaries, measures how
//! the interference structure changes, and then lets each coalescing
//! strategy try to remove the moves the splitting introduced.
//!
//! ```text
//! cargo run --example splitting_tradeoff
//! ```

use coalesce_core::affinity::AffinityGraph;
use coalesce_core::conservative::{conservative_coalesce, ConservativeRule};
use coalesce_core::optimistic::optimistic_coalesce;
use coalesce_gen::programs::{random_ssa_program, ProgramParams};
use coalesce_ir::interference::InterferenceGraph;
use coalesce_ir::liveness::Liveness;
use coalesce_ir::splitting::split_at_block_boundaries;
use coalesce_ir::Function;

fn describe(f: &Function, label: &str) -> AffinityGraph {
    let live = Liveness::compute(f);
    let ig = InterferenceGraph::build(f, &live);
    let ag = AffinityGraph::from_interference(&ig);
    println!(
        "{label:<14} vars={:<3} copies={:<3} maxlive={:<2} interferences={:<4} affinities={:<3} (weight {})",
        f.num_vars(),
        f.num_copies(),
        live.maxlive_precise(f),
        ig.graph.num_edges(),
        ag.num_affinities(),
        ag.total_weight()
    );
    ag
}

fn main() {
    let params = ProgramParams {
        diamonds: 4,
        ops_per_block: 3,
        pressure: 5,
        phis_per_join: 2,
    };
    let mut rng = coalesce_gen::rng(11);
    let mut f = random_ssa_program(&params, &mut rng);
    let k = 6;

    describe(&f, "original");

    let stats = split_at_block_boundaries(&mut f);
    println!(
        "split at block boundaries: {} copies inserted, {} fresh variables",
        stats.copies_inserted, stats.new_variables
    );
    let ag = describe(&f, "after split");

    println!("\ncoalescing the split program back (k = {k}):");
    for rule in [
        ConservativeRule::Briggs,
        ConservativeRule::BriggsGeorge,
        ConservativeRule::ExtendedGeorge,
        ConservativeRule::BruteForce,
    ] {
        let res = conservative_coalesce(&ag, k, rule);
        println!(
            "  {rule:?}: removed {}/{} moves (weight {}/{})",
            res.stats.coalesced,
            ag.num_affinities(),
            res.stats.coalesced_weight,
            ag.total_weight()
        );
    }
    let optimistic = optimistic_coalesce(&ag, k);
    println!(
        "  Optimistic: removed {}/{} moves (weight {}/{})",
        optimistic.stats.coalesced,
        ag.num_affinities(),
        optimistic.stats.coalesced_weight,
        ag.total_weight()
    );
}
