//! Offline, in-tree stand-in for the subset of the `criterion` crate this
//! workspace uses.
//!
//! Provides [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros.  Instead of
//! criterion's statistical machinery it times each benchmark with
//! `std::time::Instant` over a warm-up phase plus `sample_size` measured
//! batches and prints median / mean per-iteration times — enough for the
//! coarse regression tracking `cargo bench` is used for here.
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver; holds the default measurement settings.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _criterion: self,
        }
    }
}

/// A named benchmark identifier, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id of the form `function/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Conversion accepted by the `bench_*` methods (string or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the id to the text shown in the report.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_benchmark_id(), &mut f);
        self
    }

    /// Runs one benchmark that receives an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_benchmark_id(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
    }

    /// Finishes the group (report output happens eagerly per benchmark).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine`, calling it in batches until the warm-up and
    /// measurement budgets are exhausted.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters as u32)
            .unwrap_or_default();

        // Choose a batch size so that sample_size batches fit roughly in
        // the measurement budget.
        let target = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let batch = if per_iter.as_nanos() == 0 {
            64
        } else {
            (target / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u32
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / batch);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        println!(
            "{id:<50} median {:>12} mean {:>12} ({} samples)",
            format_duration(median),
            format_duration(mean),
            sorted.len()
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Hint to the optimizer that `value` is used (re-export of
/// `std::hint::black_box` under criterion's name).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
