//! The [`Arbitrary`] trait backing `any::<T>()`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;

/// Types with a canonical strategy generating arbitrary values.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for uniformly random `bool`s.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_uniform_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = core::ops::RangeInclusive<$t>;

            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_uniform_int!(u8, u16, u32, usize, i8, i16, i32);
