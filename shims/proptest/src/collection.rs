//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Length specification for [`vec`]: an exact length or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        SizeRange { lo, hi: hi + 1 }
    }
}

/// Strategy producing `Vec`s of values drawn from `element`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    /// Prefix shrinking first (the minimum length, half the length, one
    /// element fewer — all valid lengths), then element-wise shrinking of
    /// each position in turn.
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let len = value.len();
        // The candidate lengths are ascending after filtering, so `dedup`
        // removes all duplicates.
        let mut lens: Vec<usize> = [self.size.lo, len / 2, len.saturating_sub(1)]
            .into_iter()
            .filter(|&l| l >= self.size.lo && l < len)
            .collect();
        lens.dedup();
        for candidate_len in lens {
            out.push(value[..candidate_len].to_vec());
        }
        for (i, element) in value.iter().enumerate() {
            for candidate in self.element.shrink(element) {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

/// Builds a strategy for vectors of `element` values with lengths drawn
/// from `size` (an exact `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_shrink_by_prefix_first() {
        let strategy = vec(0usize..10, 1..6);
        let value = vec![4, 5, 6, 7];
        let candidates = strategy.shrink(&value);
        // Prefixes (aggressive first), respecting the minimum length.
        assert_eq!(candidates[0], vec![4]);
        assert_eq!(candidates[1], vec![4, 5]);
        assert_eq!(candidates[2], vec![4, 5, 6]);
        // Then element-wise shrinks that keep the length.
        assert!(candidates[3..].iter().all(|c| c.len() == 4));
        assert!(candidates.contains(&vec![0, 5, 6, 7]));
        assert!(candidates.contains(&vec![4, 5, 6, 0]));
    }

    #[test]
    fn exact_length_vectors_never_shrink_below_it() {
        let strategy = vec(0usize..10, 3);
        let value = vec![9, 9, 9];
        assert!(strategy.shrink(&value).iter().all(|c| c.len() == 3));
    }

    #[test]
    fn minimal_vector_has_no_prefix_candidates() {
        let strategy = vec(0usize..10, 2..5);
        let value = vec![0, 0];
        assert!(strategy.shrink(&value).is_empty());
    }
}
