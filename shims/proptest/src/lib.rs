//! Offline, in-tree stand-in for the subset of the `proptest` crate this
//! workspace uses.
//!
//! Supports the `proptest!` macro with `pat in strategy` arguments, range
//! and tuple strategies, `collection::vec`, `any::<bool>()`, `prop_map` /
//! `prop_flat_map`, `Just`, and the `prop_assert*` / `prop_assume!`
//! macros.  Generation is deterministic: every test function derives its
//! RNG seed from its own name, so failures reproduce across runs.
//!
//! Differences from upstream: shrinking is eager rather than lazy (a
//! failing case is greedily minimized by re-running [`strategy::Strategy::shrink`]
//! candidates — integers halve/decrement toward their lower bound, vecs
//! shrink by prefix then element-wise — within a bounded budget), and
//! rejected cases (`prop_assume!`) are retried up to a fixed factor of
//! the requested case count.
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Generates a value of `T` via its [`arbitrary::Arbitrary`] strategy.
pub fn any<T: arbitrary::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property; panics with location info.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current generated case; the runner draws a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Declares property tests.  Each `fn name(pat in strategy, ...) { body }`
/// item expands to a `#[test]` that runs `cases` generated inputs and, on
/// failure, panics with a shrunk minimal counterexample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item muncher for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // `#[test]` arrives via `$meta`: callers write it inside the macro
        // block, exactly as with upstream proptest.  The argument
        // strategies are packed into one tuple strategy so generation and
        // shrinking live in `run_property`.
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                $cfg,
                ($($strat,)+),
                |__case| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(__case);
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}
