//! The [`Strategy`] trait and the combinators the workspace tests use.

use crate::test_runner::TestRng;
use rand::{Rng, SampleUniform};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to obtain a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for core::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
