//! The [`Strategy`] trait and the combinators the workspace tests use.

use crate::test_runner::TestRng;
use rand::{Rng, SampleUniform};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no lazy value tree: a strategy draws
/// a value from the deterministic [`TestRng`], and *shrinking* is an
/// explicit method proposing simpler candidates for an already-generated
/// value (most aggressive first).  The runner re-tests candidates greedily
/// until none still fails.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes simpler candidates for a failing `value`, most aggressive
    /// first.  Candidates must themselves be producible by this strategy
    /// (so a shrunk counterexample is still a valid input).  The default
    /// is no shrinking.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to obtain a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
///
/// `f` is not invertible, so mapped values do not shrink.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Integers that can propose smaller failing candidates: toward the lower
/// bound by jumping straight to it, halving the distance, and decrementing.
pub trait IntShrink: Copy + PartialEq {
    /// Candidates in `[lo, value)`, most aggressive first.
    fn shrink_toward(lo: Self, value: Self) -> Vec<Self>;
}

macro_rules! impl_int_shrink {
    ($($t:ty),*) => {$(
        impl IntShrink for $t {
            fn shrink_toward(lo: Self, value: Self) -> Vec<Self> {
                // i128 intermediates keep `value - lo` overflow-free for
                // every implementing type.
                let (lo_w, value_w) = (lo as i128, value as i128);
                if value_w <= lo_w {
                    return Vec::new();
                }
                let mut out = vec![lo];
                let half = lo_w + (value_w - lo_w) / 2;
                if half != lo_w {
                    out.push(half as $t);
                }
                let dec = value_w - 1;
                if dec != lo_w && dec != half {
                    out.push(dec as $t);
                }
                out
            }
        }
    )*};
}

impl_int_shrink!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform + IntShrink> Strategy for core::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_toward(self.start, *value)
    }
}

impl<T: SampleUniform + IntShrink> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_toward(*self.start(), *value)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component shrinks at a time; the others are kept.
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_shrink_toward_the_lower_bound() {
        // Aggressive first: the bound itself, then halving, then decrement.
        assert_eq!((0usize..100).shrink(&40), vec![0, 20, 39]);
        assert_eq!((5usize..100).shrink(&7), vec![5, 6]);
        assert_eq!((5usize..100).shrink(&6), vec![5]);
        assert_eq!((5usize..100).shrink(&5), Vec::<usize>::new());
        assert_eq!((0usize..=10).shrink(&10), vec![0, 5, 9]);
    }

    #[test]
    fn signed_integers_shrink_without_overflow() {
        assert_eq!((i8::MIN..=i8::MAX).shrink(&i8::MAX), vec![-128, -1, 126]);
        assert_eq!((-10i32..10).shrink(&-9), vec![-10]);
    }

    #[test]
    fn shrink_candidates_stay_in_range() {
        for value in 1..50u64 {
            for candidate in (1u64..50).shrink(&value) {
                assert!((1..50).contains(&candidate), "{candidate} for {value}");
                assert!(candidate < value, "{candidate} not smaller than {value}");
            }
        }
    }

    #[test]
    fn tuples_shrink_one_component_at_a_time() {
        let strategy = (0usize..10, 0usize..10);
        let candidates = strategy.shrink(&(4, 2));
        assert!(candidates.contains(&(0, 2)));
        assert!(candidates.contains(&(4, 0)));
        assert!(candidates.iter().all(|&(a, b)| a == 4 || b == 2));
    }

    #[test]
    fn just_and_map_do_not_shrink() {
        assert!(Just(7u32).shrink(&7).is_empty());
        let mapped = (0usize..10).prop_map(|x| x * 2);
        assert!(mapped.shrink(&4).is_empty());
    }
}
