//! Test-runner configuration, the deterministic RNG behind generation,
//! and the property-execution loop with input shrinking.

use crate::strategy::Strategy;
use rand::RngCore;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Marker returned by `prop_assume!` when a generated case is rejected.
#[derive(Clone, Copy, Debug)]
pub struct Rejected;

/// Configuration for one `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Returns a config running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG used for value generation (xorshift-multiplied
/// SplitMix64 core seeded from the test's fully-qualified name).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for a named test; the same name always yields the
    /// same stream, so failures reproduce across runs.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, well-mixed seed
        // without depending on std's randomized hasher.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64 step.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// How one generated case fared.
enum CaseOutcome {
    Pass,
    Rejected,
    Fail(String),
}

/// Runs the body once on `value`, catching assertion panics.
fn run_case<V, F>(body: &F, value: &V) -> CaseOutcome
where
    F: Fn(&V) -> Result<(), Rejected>,
{
    match catch_unwind(AssertUnwindSafe(|| body(value))) {
        Ok(Ok(())) => CaseOutcome::Pass,
        Ok(Err(Rejected)) => CaseOutcome::Rejected,
        Err(payload) => CaseOutcome::Fail(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Greedily minimizes a failing input: repeatedly takes the first
/// [`Strategy::shrink`] candidate that still fails, within a bounded
/// number of re-executions.  Returns the minimal input, the panic message
/// it produced, and the number of successful shrink steps.
fn shrink_failure<S, F>(
    strategy: &S,
    body: &F,
    mut current: S::Value,
    mut message: String,
) -> (S::Value, String, usize)
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), Rejected>,
{
    // Every still-failing candidate panics inside `run_case`; without a
    // silent panic hook each of those would print a full "thread
    // panicked" block to stderr, burying the final minimal-counterexample
    // report.  The mutex serializes concurrent shrinkers so the previous
    // hook is always the one restored.
    static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _hook_guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut budget = 512usize;
    let mut steps = 0usize;
    'minimize: while budget > 0 {
        for candidate in strategy.shrink(&current) {
            if budget == 0 {
                break 'minimize;
            }
            budget -= 1;
            if let CaseOutcome::Fail(msg) = run_case(body, &candidate) {
                current = candidate;
                message = msg;
                steps += 1;
                continue 'minimize;
            }
        }
        // No candidate fails any more: `current` is locally minimal.
        break;
    }
    // `run_case` catches every body panic, so this restore is reached on
    // all paths through the loop.
    std::panic::set_hook(previous_hook);
    (current, message, steps)
}

/// Executes one `proptest!` property: generates cases from `strategy`,
/// runs `body` on each, retries `prop_assume!`-rejected cases, and on
/// failure panics with a shrunk (minimal) counterexample.
///
/// This is the engine behind the `proptest!` macro; the macro only packs
/// the argument strategies into a tuple and the test block into `body`.
pub fn run_property<S, F>(name: &str, config: ProptestConfig, strategy: S, body: F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: Fn(&S::Value) -> Result<(), Rejected>,
{
    let mut rng = TestRng::for_test(name);
    let mut accepted: u32 = 0;
    let mut attempts: u32 = 0;
    let max_attempts = config.cases.saturating_mul(20).max(20);
    while accepted < config.cases {
        attempts += 1;
        if attempts > max_attempts {
            assert!(
                accepted > 0,
                "proptest: every generated case was rejected by prop_assume! \
                 ({attempts} attempts)"
            );
            break;
        }
        let value = strategy.generate(&mut rng);
        match run_case(&body, &value) {
            CaseOutcome::Pass => accepted += 1,
            CaseOutcome::Rejected => {}
            CaseOutcome::Fail(message) => {
                let (minimal, minimal_message, steps) =
                    shrink_failure(&strategy, &body, value.clone(), message);
                panic!(
                    "proptest: property `{name}` failed.\n\
                     minimal failing input: {minimal:?} (after {steps} shrink steps)\n\
                     original failing input: {value:?}\n\
                     {minimal_message}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A property that fails for every value ≥ 17 must be minimized to
    /// exactly 17 — the shrinker walks halving/decrement candidates down
    /// to the boundary.
    #[test]
    fn failing_integer_property_shrinks_to_the_boundary() {
        let result = catch_unwind(|| {
            run_property(
                "shrink_to_boundary",
                ProptestConfig::with_cases(64),
                (0usize..1000,),
                |&(x,)| {
                    assert!(x < 17, "too big: {x}");
                    Ok(())
                },
            );
        });
        let message = panic_message(result.expect_err("property must fail").as_ref());
        assert!(
            message.contains("minimal failing input: (17,)"),
            "unexpected report: {message}"
        );
        assert!(
            message.contains("too big: 17"),
            "unexpected report: {message}"
        );
    }

    /// Vectors minimize to the shortest failing prefix with minimized
    /// elements.
    #[test]
    fn failing_vec_property_shrinks_to_a_minimal_witness() {
        let result = catch_unwind(|| {
            run_property(
                "shrink_vec",
                ProptestConfig::with_cases(64),
                (crate::collection::vec(0usize..100, 0..8),),
                |(v,)| {
                    assert!(!v.iter().any(|&x| x >= 10), "has a big element: {v:?}");
                    Ok(())
                },
            );
        });
        let message = panic_message(result.expect_err("property must fail").as_ref());
        // Minimal witness: a single element equal to the boundary.
        assert!(
            message.contains("minimal failing input: ([10],)"),
            "unexpected report: {message}"
        );
    }

    /// Passing properties never enter the shrinker and accept the
    /// configured number of cases.
    #[test]
    fn passing_property_runs_all_cases() {
        run_property(
            "passing",
            ProptestConfig::with_cases(32),
            (0usize..5,),
            |&(x,)| {
                assert!(x < 5);
                Ok(())
            },
        );
    }

    /// `prop_assume!`-style rejections are retried rather than counted.
    #[test]
    fn rejected_cases_are_retried() {
        let mut seen = std::cell::Cell::new(0u32);
        run_property(
            "rejections",
            ProptestConfig::with_cases(8),
            (0usize..10,),
            |&(x,)| {
                if x % 2 == 1 {
                    return Err(Rejected);
                }
                seen.set(seen.get() + 1);
                assert!(x % 2 == 0);
                Ok(())
            },
        );
        assert!(seen.get_mut() >= &mut 8);
    }
}
