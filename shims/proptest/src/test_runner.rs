//! Test-runner configuration and the deterministic RNG behind generation.

use rand::RngCore;

/// Marker returned by `prop_assume!` when a generated case is rejected.
#[derive(Clone, Copy, Debug)]
pub struct Rejected;

/// Configuration for one `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Returns a config running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG used for value generation (xorshift-multiplied
/// SplitMix64 core seeded from the test's fully-qualified name).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for a named test; the same name always yields the
    /// same stream, so failures reproduce across runs.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, well-mixed seed
        // without depending on std's randomized hasher.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64 step.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
