//! Offline, in-tree stand-in for the subset of the `rand` crate API that
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so instead of the real
//! `rand` we vendor the traits the generators rely on: [`RngCore`],
//! [`SeedableRng`] and the extension trait [`Rng`] providing `gen_range`
//! and `gen_bool`.  The concrete generator lives in the sibling
//! `rand_chacha` shim.
//!
//! Determinism is the only contract: for a fixed seed the values produced
//! are stable across runs and platforms.  The streams do **not** match the
//! upstream `rand` crate bit-for-bit (the uniform-range rejection strategy
//! differs), which is fine because every consumer seeds its own RNG and
//! only ever compares against itself.
#![warn(missing_docs)]

/// A low-level source of random (here: deterministic pseudo-random) data.
pub trait RngCore {
    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with bytes from the stream.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a fixed-size byte array for practical RNGs).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a single `u64`, expanding it with SplitMix64
    /// exactly once per seed word so nearby seeds give unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the standard seed expander (public-domain constants).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Integer types that support uniform sampling from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)` (`high` exclusive).
    fn sample_uniform<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Samples uniformly from `[low, high]` (`high` inclusive); unlike the
    /// exclusive form this can produce the type's maximum value.
    fn sample_uniform_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                sample_span(low as i128, (high as i128 - low as i128) as u128, rng) as $t
            }
            fn sample_uniform_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range");
                sample_span(low as i128, (high as i128 - low as i128) as u128 + 1, rng) as $t
            }
        }
    )*};
}

/// Uniformly samples `low + x` with `x` in `[0, span)`.  `span` may be as
/// large as 2⁶⁴ (a full 64-bit domain), in which case the rejection zone
/// covers everything and the raw word is returned unchanged.
fn sample_span<R: RngCore + ?Sized>(low: i128, span: u128, rng: &mut R) -> i128 {
    debug_assert!(span > 0 && span <= u128::from(u64::MAX) + 1);
    // Rejection on the biased zone keeps the distribution uniform without
    // modulo bias.
    let zone = u128::from(u64::MAX) + 1 - ((u128::from(u64::MAX) + 1) % span);
    loop {
        let x = u128::from(rng.next_u64());
        if x < zone {
            return low + (x % span) as i128;
        }
    }
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_uniform_inclusive(start, end, rng)
    }
}

/// High-level convenience methods; blanket-implemented for every
/// [`RngCore`], mirroring the upstream `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random bits give a uniform float in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Re-exports matching `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingRng(u64);

    impl RngCore for CountingRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }
    }

    #[test]
    fn inclusive_ranges_reach_the_type_maximum() {
        let mut rng = CountingRng(0);
        // Degenerate range at MAX must return MAX, not panic.
        assert_eq!(rng.gen_range(u8::MAX..=u8::MAX), u8::MAX);
        assert_eq!(rng.gen_range(u64::MAX..=u64::MAX), u64::MAX);
        // The full u8 domain must produce MAX within a reasonable horizon.
        let mut saw_max = false;
        for _ in 0..10_000 {
            if rng.gen_range(0u8..=u8::MAX) == u8::MAX {
                saw_max = true;
                break;
            }
        }
        assert!(saw_max, "full inclusive range never produced the maximum");
    }

    #[test]
    fn samples_stay_in_bounds() {
        let mut rng = CountingRng(7);
        for _ in 0..1_000 {
            let x = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
            let y = rng.gen_range(10usize..20);
            assert!((10..20).contains(&y));
        }
    }
}
