//! Offline, in-tree stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream generator (Bernstein's ChaCha
//! with 8 rounds) behind the same type name the upstream crate exports.
//! The stream is fully determined by the 32-byte seed, so all workspace
//! generators stay deterministic.  It is *not* guaranteed to be
//! bit-identical to the upstream `rand_chacha` stream (word ordering of
//! the output buffer differs), which no consumer relies on.
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A deterministic RNG producing the ChaCha8 keystream of its seed.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce state matrix input.
    state: [u32; 16],
    /// Buffered output block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill needed".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let (low, carry) = self.state[12].overflowing_add(1);
        self.state[12] = low;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Words 12..16 (counter + nonce) start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let low = u64::from(self.next_u32());
        let high = u64::from(self.next_u32());
        (high << 32) | low
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn zero_seed_matches_chacha8_reference_keystream() {
        // The eSTREAM ChaCha8 test vector (key = 0, iv = 0) begins with the
        // keystream bytes 3e 00 ef 2f ..., i.e. word 0 = 0x2fef003e LE.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let first = rng.next_u32();
        assert_eq!(first, 0x2fef_003e, "ChaCha8 zero-key block word 0");
    }
}
