//! Umbrella crate re-exporting the workspace members for examples and
//! integration tests.
//!
//! The crates form a strict layering (each layer depends only on the ones
//! before it):
//!
//! ```text
//! coalesce-graph ← coalesce-ir ← coalesce-core ← { coalesce-gen,
//!                                                  coalesce-alloc,
//!                                                  coalesce-reduce }
//!                                                ← coalesce-bench
//! ```
#![warn(missing_docs)]
pub use coalesce_alloc;
pub use coalesce_bench;
pub use coalesce_core;
pub use coalesce_gen;
pub use coalesce_graph;
pub use coalesce_ir;
pub use coalesce_reduce;
pub use coalesce_verify;
