//! Umbrella crate re-exporting the workspace members for examples and integration tests.
#![warn(missing_docs)]
pub use coalesce_core;
pub use coalesce_gen;
pub use coalesce_graph;
pub use coalesce_ir;
pub use coalesce_reduce;
