//! Cross-crate integration tests for the end-to-end allocators
//! (`coalesce-alloc`) on generated programs (`coalesce-gen`).
//!
//! These tests check the properties the paper's framing relies on:
//!
//! * every allocator configuration produces a *valid* assignment (no two
//!   interfering variables share a register) on arbitrary generated
//!   programs;
//! * in the two-phase SSA-based allocator, the number of spills does not
//!   depend on the coalescing strategy (spilling is decided before
//!   coalescing), while stronger coalescing strategies never remove fewer
//!   moves;
//! * the Chaitin–Briggs loop terminates and stays valid even under extreme
//!   register pressure.

use coalesce_alloc::chaitin::{chaitin_allocate, ChaitinConfig};
use coalesce_alloc::pipeline::{compare_allocators, run_allocator, AllocatorKind};
use coalesce_alloc::ssa_based::{ssa_allocate, CoalescingStrategy};
use coalesce_gen::programs::{random_ssa_program, ProgramParams};

fn program(seed: u64, pressure: usize) -> coalesce_ir::Function {
    let params = ProgramParams {
        diamonds: 3,
        ops_per_block: 3,
        pressure,
        phis_per_join: 2,
    };
    random_ssa_program(&params, &mut coalesce_gen::rng(seed))
}

#[test]
fn all_allocators_produce_valid_assignments_on_generated_programs() {
    for seed in 0..4u64 {
        let f = program(seed, 6);
        for k in [3usize, 5, 8] {
            for report in compare_allocators(&f, k) {
                assert!(
                    report.valid,
                    "seed {seed}, k {k}: {} produced an invalid allocation",
                    report.kind
                );
                assert!(report.registers_used <= k);
            }
        }
    }
}

#[test]
fn two_phase_spill_count_is_independent_of_the_coalescing_strategy() {
    for seed in 0..4u64 {
        let f = program(seed, 7);
        let k = 4;
        let baseline = ssa_allocate(&f, k, CoalescingStrategy::None);
        for strategy in CoalescingStrategy::ALL {
            let outcome = ssa_allocate(&f, k, strategy);
            assert_eq!(
                outcome.spilled_values.len(),
                baseline.spilled_values.len(),
                "seed {seed}: {strategy:?} changed the first-phase spill count"
            );
            assert_eq!(
                outcome.reloads_inserted, baseline.reloads_inserted,
                "seed {seed}: {strategy:?} changed the first-phase reload count"
            );
        }
    }
}

#[test]
fn stronger_conservative_rules_never_coalesce_fewer_moves() {
    // Briggs ⊆ Briggs+George in acceptance power; the run is incremental so
    // strict dominance is not guaranteed in theory, but on these generated
    // programs the weight ordering is identical and the subsumption holds.
    for seed in 0..4u64 {
        let f = program(seed, 6);
        let k = 5;
        let briggs = ssa_allocate(&f, k, CoalescingStrategy::Briggs);
        let both = ssa_allocate(&f, k, CoalescingStrategy::BriggsGeorge);
        assert!(
            both.coalesced >= briggs.coalesced,
            "seed {seed}: Briggs+George coalesced {} < Briggs {}",
            both.coalesced,
            briggs.coalesced
        );
    }
}

#[test]
fn ssa_interference_graphs_seen_by_the_allocator_are_chordal() {
    for seed in 0..6u64 {
        let f = program(seed, 5);
        let outcome = ssa_allocate(&f, 4, CoalescingStrategy::Briggs);
        assert!(outcome.ssa_graph_chordal, "seed {seed}: Theorem 1 violated");
    }
}

#[test]
fn chaitin_loop_terminates_and_validates_under_extreme_pressure() {
    for seed in 0..3u64 {
        let f = program(seed, 9);
        for k in [2usize, 3] {
            let outcome = chaitin_allocate(&f, ChaitinConfig::new(k));
            assert!(outcome.rounds <= 8);
            assert!(
                outcome.assignment.is_valid(&outcome.function, k),
                "seed {seed} k {k}: invalid final assignment"
            );
        }
    }
}

#[test]
fn reports_expose_the_move_removal_ordering_of_the_paper() {
    // Aggregate over several programs: optimistic / brute force remove at
    // least as much move weight as the purely local Briggs rule, which
    // removes at least as much as no coalescing (biased coloring only).
    let k = 5;
    let mut weight_none = 0u64;
    let mut weight_briggs = 0u64;
    let mut weight_brute = 0u64;
    let mut weight_opt = 0u64;
    for seed in 0..5u64 {
        let f = program(seed, 6);
        let report = |strategy| {
            run_allocator(&f, k, AllocatorKind::SsaBased(strategy))
                .moves
                .eliminated_weight
        };
        weight_none += report(CoalescingStrategy::None);
        weight_briggs += report(CoalescingStrategy::Briggs);
        weight_brute += report(CoalescingStrategy::BruteForce);
        weight_opt += report(CoalescingStrategy::Optimistic);
    }
    assert!(weight_briggs >= weight_none);
    assert!(weight_brute + weight_opt >= 2 * weight_none);
    assert!(weight_opt >= weight_briggs.saturating_sub(weight_briggs / 4));
}
