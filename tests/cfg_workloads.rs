//! Property tests for the structured-CFG workload generator
//! (`coalesce_gen::cfg`): strict SSA checked directly against the
//! dominator tree, reducibility when the irreducible knob is off, and the
//! Theorem 1 invariants (chordal SSA interference graph with ω = Maxlive).

use coalesce_gen::cfg::{generate, CfgParams, PressureLevel, ShapeProfile};
use coalesce_graph::chordal;
use coalesce_ir::dom::DominatorTree;
use coalesce_ir::function::{Function, InstrView};
use coalesce_ir::interference::{BuildOptions, InterferenceGraph, InterferenceKind};
use coalesce_ir::liveness::Liveness;
use coalesce_ir::loops::is_reducible;
use proptest::prelude::*;

/// Checks strictness from first principles with `ir::dom`: the single
/// definition of every used variable dominates each of its uses (same
/// block: the def appears earlier; φ arguments count as uses at the end of
/// the corresponding predecessor).
fn defs_dominate_uses(f: &Function) -> Result<(), String> {
    let dom = DominatorTree::compute(f);
    // Definition site of every variable: (block, index in block).
    let mut def_site = vec![None; f.num_vars()];
    for (b, i, instr) in f.instructions() {
        if let Some(d) = instr.def() {
            if def_site[d.index()].is_some() {
                return Err(format!("{d:?} defined twice"));
            }
            def_site[d.index()] = Some((b, i));
        }
    }
    let check = |v: coalesce_ir::function::Var, use_block, use_index: Option<usize>| {
        let Some((def_block, def_index)) = def_site[v.index()] else {
            return Err(format!("{v:?} used but never defined"));
        };
        let ok = if def_block == use_block {
            // Terminator uses (use_index None) come after every in-block def.
            use_index.is_none_or(|i| def_index < i)
        } else {
            dom.dominates(def_block, use_block)
        };
        if ok {
            Ok(())
        } else {
            Err(format!("def of {v:?} does not dominate its use"))
        }
    };
    for (b, i, instr) in f.instructions() {
        if let InstrView::Phi { args, .. } = instr {
            for a in args {
                // A φ argument is a use at the end of `pred`.
                check(a.value, a.pred, None)?;
            }
        } else {
            for &v in instr.local_uses() {
                check(v, b, Some(i))?;
            }
        }
    }
    for b in f.block_ids() {
        for v in f.terminator(b).uses() {
            check(v, b, None)?;
        }
    }
    Ok(())
}

proptest! {
    /// Every profile × pressure × seed: the generator output is strict SSA
    /// (verified against the dominator tree) and reducible.
    #[test]
    fn generated_cfgs_are_strict_ssa_and_reducible(seed in 0u64..24) {
        for profile in ShapeProfile::ALL {
            let params = profile.params(PressureLevel::Medium.pressure());
            let f = generate(&params, &mut coalesce_gen::rng(seed));
            prop_assert!(f.validate().is_ok());
            prop_assert!(coalesce_ir::ssa::is_ssa(&f));
            if let Err(e) = defs_dominate_uses(&f) {
                prop_assert!(false, "{profile} seed {seed}: {e}");
            }
            prop_assert!(is_reducible(&f), "{profile} seed {seed} not reducible");
        }
    }

    /// Theorem 1 on generated workloads: the intersection interference
    /// graph of the strict SSA form is chordal with ω = Maxlive.
    #[test]
    fn generated_ssa_interference_graphs_are_chordal_with_omega_maxlive(seed in 0u64..12) {
        for profile in ShapeProfile::ALL {
            let params = profile.params(PressureLevel::Low.pressure());
            let f = generate(&params, &mut coalesce_gen::rng(seed));
            let live = Liveness::compute(&f);
            let ig = InterferenceGraph::build_with(
                &f,
                &live,
                BuildOptions {
                    kind: InterferenceKind::Intersection,
                    ..Default::default()
                },
            );
            prop_assert!(chordal::is_chordal(&ig.graph), "{profile} seed {seed}");
            let omega = chordal::chordal_clique_number(&ig.graph).unwrap();
            prop_assert_eq!(omega, live.maxlive_precise(&f), "{} seed {}", profile, seed);
        }
    }

    /// The irreducible knob: still strict SSA (and still chordal — Theorem
    /// 1 needs strictness, not reducibility), but no longer reducible.
    #[test]
    fn irreducible_knob_preserves_strictness_but_breaks_reducibility(seed in 0u64..12) {
        let params = CfgParams {
            irreducible_regions: 1,
            ..CfgParams::default()
        };
        let f = generate(&params, &mut coalesce_gen::rng(seed));
        prop_assert!(f.validate().is_ok());
        if let Err(e) = defs_dominate_uses(&f) {
            prop_assert!(false, "seed {seed}: {e}");
        }
        prop_assert!(!is_reducible(&f), "seed {seed} unexpectedly reducible");
        let live = Liveness::compute(&f);
        let ig = InterferenceGraph::build_with(
            &f,
            &live,
            BuildOptions {
                kind: InterferenceKind::Intersection,
                ..Default::default()
            },
        );
        prop_assert!(chordal::is_chordal(&ig.graph), "seed {seed}");
    }
}

#[test]
fn chordal_coloring_of_generated_cfgs_uses_exactly_maxlive_colors() {
    // The acceptance invariant behind E13's `chordal_colors` column.
    for profile in ShapeProfile::ALL {
        for level in PressureLevel::ALL {
            let params = profile.params(level.pressure());
            let f = generate(&params, &mut coalesce_gen::rng(9));
            let live = Liveness::compute(&f);
            let ig = InterferenceGraph::build_with(
                &f,
                &live,
                BuildOptions {
                    kind: InterferenceKind::Intersection,
                    ..Default::default()
                },
            );
            let coloring = chordal::chordal_coloring(&ig.graph).expect("chordal");
            assert!(coloring.is_proper(&ig.graph));
            assert_eq!(
                coloring.num_colors(),
                live.maxlive_precise(&f),
                "{profile} {level:?}"
            );
        }
    }
}
