//! Equivalence and fuzz suite for the linear (Blair–Peyton) clique-tree
//! pipeline and the hardened DIMACS/challenge parsers.
//!
//! The Blair–Peyton construction replaced a quadratic pipeline (subset
//! checks between candidate cliques + all-pairs Kruskal); these tests pin
//! the new construction to the old one's observable behavior: the same
//! maximal-clique set, a tree with the junction property, and the same
//! clique number.  The parser fuzz covers the bugfixes of the same PR:
//! duplicate problem lines, self-loops and truncated files must all be
//! rejected instead of silently mangling the instance.

use coalesce_gen::graphs::{random_chordal_graph, random_interval_graph};
use coalesce_graph::cliquetree::CliqueTree;
use coalesce_graph::format::{from_challenge, from_dimacs, to_challenge, to_dimacs, ChallengeFile};
use coalesce_graph::{chordal, Graph, VertexId};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// The pre-Blair–Peyton enumeration, kept verbatim as the reference: for
/// every vertex of a perfect elimination ordering, `{v} ∪ {later
/// neighbors}` is a candidate clique, and the maximal candidates under
/// set inclusion are the maximal cliques.
fn subset_check_maximal_cliques(g: &Graph) -> Option<Vec<BTreeSet<VertexId>>> {
    let order = chordal::perfect_elimination_ordering(g)?;
    let cap = g.capacity();
    let mut position = vec![usize::MAX; cap];
    for (i, &v) in order.iter().enumerate() {
        position[v.index()] = i;
    }
    let mut cliques: Vec<BTreeSet<VertexId>> = Vec::new();
    for &v in &order {
        let mut clique: BTreeSet<VertexId> = g
            .neighbors(v)
            .filter(|u| position[u.index()] > position[v.index()])
            .collect();
        clique.insert(v);
        if !cliques.iter().any(|c| clique.is_subset(c)) {
            cliques.retain(|c| !c.is_subset(&clique));
            cliques.push(clique);
        }
    }
    Some(cliques)
}

/// Strategy: a random interval graph (always chordal) of up to 40 vertices.
fn arbitrary_interval_graph() -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0usize..40, 1usize..12), 1..40).prop_map(|intervals| {
        let n = intervals.len();
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                let (a1, l1) = intervals[i];
                let (a2, l2) = intervals[j];
                let (b1, b2) = (a1 + l1, a2 + l2);
                if a1.max(a2) <= b1.min(b2) {
                    g.add_edge(VertexId::new(i), VertexId::new(j));
                }
            }
        }
        g
    })
}

fn sorted(mut cliques: Vec<BTreeSet<VertexId>>) -> Vec<BTreeSet<VertexId>> {
    cliques.sort();
    cliques
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tentpole equivalence: the Blair–Peyton enumeration yields exactly
    /// the clique set of the old subset-check enumeration, and the tree
    /// built from the same sweep has the junction property.
    #[test]
    fn blair_peyton_matches_the_subset_check_enumeration(g in arbitrary_interval_graph()) {
        let new = chordal::chordal_maximal_cliques(&g).expect("interval graphs are chordal");
        let old = subset_check_maximal_cliques(&g).expect("interval graphs are chordal");
        prop_assert_eq!(sorted(new.clone()), sorted(old));
        // Every clique really is a clique, and the tree is junction-valid.
        for clique in &new {
            let members: Vec<VertexId> = clique.iter().copied().collect();
            prop_assert!(g.is_clique(&members));
        }
        let tree = CliqueTree::build(&g).expect("interval graphs are chordal");
        prop_assert_eq!(tree.num_nodes(), new.len());
        prop_assert!(tree.has_junction_property());
        prop_assert_eq!(
            Some(tree.clique_number()),
            chordal::chordal_clique_number(&g)
        );
    }

    /// Same equivalence on the clique-attachment chordal generator, whose
    /// shape (many small separators, disconnected pieces possible) differs
    /// from interval graphs.
    #[test]
    fn blair_peyton_matches_on_attachment_chordal_graphs(seed in 0u64..400, n in 1usize..40) {
        let mut rng = coalesce_gen::rng(seed);
        let g = random_chordal_graph(n, 5, &mut rng);
        let new = chordal::chordal_maximal_cliques(&g).expect("generator output is chordal");
        let old = subset_check_maximal_cliques(&g).expect("generator output is chordal");
        prop_assert_eq!(sorted(new), sorted(old));
        let tree = CliqueTree::build(&g).expect("generator output is chordal");
        prop_assert!(tree.has_junction_property());
    }

    /// The precomputed vertex→node index must agree with a scan of the
    /// cliques, for every vertex.
    #[test]
    fn nodes_containing_index_matches_a_full_scan(g in arbitrary_interval_graph()) {
        let tree = CliqueTree::build(&g).expect("interval graphs are chordal");
        for v in g.vertices() {
            let scanned: Vec<usize> = (0..tree.num_nodes())
                .filter(|&i| tree.clique(i).contains(&v))
                .collect();
            prop_assert_eq!(tree.nodes_containing(v), scanned.as_slice());
            prop_assert_eq!(tree.any_node_containing(v), scanned.first().copied());
        }
    }

    /// Round trip plus mutation fuzz for the DIMACS parser: the writer's
    /// output parses back to the same graph; appending a duplicate problem
    /// line, appending a self-loop, or truncating the last edge line must
    /// every one turn into a `ParseError`.
    #[test]
    fn dimacs_round_trip_and_mutations(seed in 0u64..500, n in 2usize..30) {
        let mut rng = coalesce_gen::rng(seed);
        let (g, _) = random_interval_graph(n, 2 * n, n / 2 + 1, &mut rng);
        let text = to_dimacs(&g);
        let parsed = from_dimacs(&text).expect("writer output parses");
        prop_assert_eq!(parsed.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            prop_assert!(parsed.has_edge(u, v));
        }

        let duplicated = format!("{text}p edge {n} 0\n");
        prop_assert!(from_dimacs(&duplicated).is_err(), "duplicate p must be rejected");

        let self_loop = format!("{text}e 1 1\n");
        prop_assert!(from_dimacs(&self_loop).is_err(), "self-loop must be rejected");

        if g.num_edges() > 0 {
            let truncated: String = text
                .lines()
                .take(text.lines().count() - 1)
                .map(|l| format!("{l}\n"))
                .collect();
            prop_assert!(from_dimacs(&truncated).is_err(), "truncation must be detected");
        }
    }

    /// The same round trip and mutation fuzz for the challenge parser,
    /// including the affinity-count check.
    #[test]
    fn challenge_round_trip_and_mutations(seed in 0u64..500, n in 2usize..24, k in 2usize..9) {
        let mut rng = coalesce_gen::rng(seed);
        let (g, _) = random_interval_graph(n, 2 * n, n / 2 + 1, &mut rng);
        // Affinities between the first few non-adjacent pairs.
        let live: Vec<VertexId> = g.vertices().collect();
        let mut affinities = Vec::new();
        for (i, &a) in live.iter().enumerate() {
            for &b in &live[i + 1..] {
                if !g.has_edge(a, b) && affinities.len() < 6 {
                    affinities.push((a, b, 1 + (a.index() + b.index()) as u64));
                }
            }
        }
        let file = ChallengeFile {
            graph: g.clone(),
            affinities: affinities.clone(),
            registers: Some(k),
        };
        let text = to_challenge(&file);
        let parsed = from_challenge(&text).expect("writer output parses");
        prop_assert_eq!(parsed.registers, Some(k));
        prop_assert_eq!(&parsed.affinities, &affinities);
        prop_assert_eq!(parsed.graph.num_edges(), g.num_edges());

        let duplicated = format!("{text}p coalesce {n} 0 0\n");
        prop_assert!(from_challenge(&duplicated).is_err(), "duplicate p must be rejected");

        let self_loop = format!("{text}e 1 1\n");
        prop_assert!(from_challenge(&self_loop).is_err(), "self-loop must be rejected");

        if !affinities.is_empty() {
            // Dropping the last line (an `a` line) desynchronizes the
            // declared affinity count.
            let truncated: String = text
                .lines()
                .take(text.lines().count() - 1)
                .map(|l| format!("{l}\n"))
                .collect();
            prop_assert!(from_challenge(&truncated).is_err(), "truncation must be detected");
        }
    }
}

/// Deterministic spot checks for shapes proptest rarely hits: stars,
/// disconnected graphs, isolated vertices, cliques.
#[test]
fn blair_peyton_handles_degenerate_shapes() {
    // Empty and edgeless graphs.
    assert_eq!(
        chordal::chordal_maximal_cliques(&Graph::new(0)),
        Some(vec![])
    );
    let isolated = Graph::new(3);
    let cliques = chordal::chordal_maximal_cliques(&isolated).unwrap();
    assert_eq!(cliques.len(), 3);
    let tree = CliqueTree::build(&isolated).unwrap();
    assert_eq!(tree.num_nodes(), 3);
    assert!(tree.has_junction_property());
    // A path exists between any two stitched components.
    assert_eq!(tree.path_between(0, 2).len(), 3);

    // A star K_{1,5}: 5 maximal cliques (the edges), all sharing the hub.
    let mut star = Graph::new(6);
    for leaf in 1..6 {
        star.add_edge(VertexId::new(0), VertexId::new(leaf));
    }
    let new = sorted(chordal::chordal_maximal_cliques(&star).unwrap());
    let old = sorted(subset_check_maximal_cliques(&star).unwrap());
    assert_eq!(new, old);
    assert_eq!(new.len(), 5);
    let tree = CliqueTree::build(&star).unwrap();
    assert!(tree.has_junction_property());
    assert_eq!(tree.nodes_containing(VertexId::new(0)).len(), 5);

    // A graph whose merged (dead) vertices leave identifier gaps.
    let mut merged = Graph::with_edges(
        5,
        [
            (VertexId::new(0), VertexId::new(1)),
            (VertexId::new(2), VertexId::new(3)),
            (VertexId::new(3), VertexId::new(4)),
        ],
    );
    merged.merge(VertexId::new(0), VertexId::new(2));
    let new = sorted(chordal::chordal_maximal_cliques(&merged).unwrap());
    let old = sorted(subset_check_maximal_cliques(&merged).unwrap());
    assert_eq!(new, old);
    let tree = CliqueTree::build(&merged).unwrap();
    assert!(tree.has_junction_property());
    // Dead vertices are in no clique.
    assert!(tree.nodes_containing(VertexId::new(2)).is_empty());
    assert_eq!(tree.any_node_containing(VertexId::new(2)), None);
    // Out-of-range identifiers are simply absent.
    assert!(tree.nodes_containing(VertexId::new(99)).is_empty());
}
