//! Cross-crate integration tests: full pipelines from generated programs
//! through spilling, out-of-SSA translation and every coalescing strategy.

use coalesce_core::affinity::AffinityGraph;
use coalesce_core::conservative::{conservative_coalesce, ConservativeRule};
use coalesce_core::{aggressive_heuristic, optimistic_coalesce};
use coalesce_gen::challenge::{challenge_instance, ChallengeParams};
use coalesce_gen::programs::{random_ssa_program, ProgramParams};
use coalesce_graph::{chordal, greedy};
use coalesce_ir::interference::{BuildOptions, InterferenceGraph, InterferenceKind};
use coalesce_ir::liveness::Liveness;
use coalesce_ir::{out_of_ssa, spill, ssa};

#[test]
fn theorem_1_pipeline_on_many_programs() {
    // SSA program -> interference graph: chordal with omega = Maxlive, and
    // (Property 1) greedy-omega-colorable.
    for seed in 0..12 {
        let mut rng = coalesce_gen::rng(seed);
        let f = random_ssa_program(&ProgramParams::default(), &mut rng);
        assert!(ssa::is_strict(&f));
        let live = Liveness::compute(&f);
        let ig = InterferenceGraph::build_with(
            &f,
            &live,
            BuildOptions {
                kind: InterferenceKind::Intersection,
                ..Default::default()
            },
        );
        assert!(chordal::is_chordal(&ig.graph), "seed {seed}");
        let omega = chordal::chordal_clique_number(&ig.graph).unwrap();
        assert_eq!(omega, live.maxlive_precise(&f), "seed {seed}");
        assert!(
            greedy::is_greedy_k_colorable(&ig.graph, omega),
            "seed {seed}"
        );
    }
}

#[test]
fn out_of_ssa_then_aggressive_coalescing_removes_most_copies() {
    for seed in 0..6 {
        let mut rng = coalesce_gen::rng(seed);
        let mut f = random_ssa_program(&ProgramParams::default(), &mut rng);
        let stats = out_of_ssa::destruct_ssa(&mut f);
        assert!(stats.copies_inserted >= stats.phis_removed);
        let live = Liveness::compute(&f);
        let ig = InterferenceGraph::build(&f, &live);
        let ag = AffinityGraph::from_interference(&ig);
        let res = aggressive_heuristic(&ag);
        // Aggressive coalescing removes at least half of the copies produced
        // by a split-edge out-of-SSA translation on these workloads.
        assert!(
            res.stats.coalesced * 2 >= res.stats.total,
            "seed {seed}: only {}/{} coalesced",
            res.stats.coalesced,
            res.stats.total
        );
    }
}

#[test]
fn conservative_strategies_preserve_colorability_end_to_end() {
    for seed in 0..6 {
        let mut rng = coalesce_gen::rng(seed);
        let inst = challenge_instance(&ChallengeParams::default(), &mut rng);
        let k = inst.registers.max(inst.maxlive);
        if !greedy::is_greedy_k_colorable(&inst.affinity_graph.graph, k) {
            continue; // spill-everywhere could not reach the target shape
        }
        for rule in [
            ConservativeRule::Briggs,
            ConservativeRule::George,
            ConservativeRule::BriggsGeorge,
            ConservativeRule::BruteForce,
        ] {
            let res = conservative_coalesce(&inst.affinity_graph, k, rule);
            assert!(
                greedy::is_greedy_k_colorable(&res.coalescing.merged_graph, k),
                "seed {seed}, rule {rule:?}"
            );
        }
        let opt = optimistic_coalesce(&inst.affinity_graph, k);
        assert!(greedy::is_greedy_k_colorable(
            &opt.coalescing.merged_graph,
            k
        ));
    }
}

#[test]
fn brute_force_conservative_coalesces_at_least_as_much_as_briggs() {
    for seed in 20..26 {
        let mut rng = coalesce_gen::rng(seed);
        let inst = challenge_instance(&ChallengeParams::default(), &mut rng);
        let k = inst.registers.max(inst.maxlive);
        let briggs = conservative_coalesce(&inst.affinity_graph, k, ConservativeRule::Briggs);
        let brute = conservative_coalesce(&inst.affinity_graph, k, ConservativeRule::BruteForce);
        assert!(
            brute.stats.coalesced_weight >= briggs.stats.coalesced_weight,
            "seed {seed}"
        );
    }
}

#[test]
fn spilling_then_allocating_never_breaks_interference() {
    for seed in 0..4 {
        let mut rng = coalesce_gen::rng(seed);
        let mut f = random_ssa_program(
            &ProgramParams {
                pressure: 8,
                ..Default::default()
            },
            &mut rng,
        );
        let k = 4;
        spill::spill_to_pressure(&mut f, k);
        out_of_ssa::destruct_ssa(&mut f);
        let live = Liveness::compute(&f);
        let ig = InterferenceGraph::build(&f, &live);
        let ag = AffinityGraph::from_interference(&ig);
        let allocation = coalesce_core::irc::allocate(&ag, k);
        for (a, b) in ag.graph.edges() {
            if let (Some(ca), Some(cb)) = (allocation.color_of(a), allocation.color_of(b)) {
                assert_ne!(ca, cb, "seed {seed}: interfering vertices share a register");
            }
        }
    }
}

#[test]
fn property_2_lifting_transports_every_structural_predicate() {
    use coalesce_graph::lift::lift_by_clique;
    for seed in 0..6 {
        let mut rng = coalesce_gen::rng(seed);
        let (g, _) = coalesce_gen::graphs::random_interval_graph(12, 20, 5, &mut rng);
        let omega = chordal::chordal_clique_number(&g).unwrap();
        for p in 1..3 {
            let lifted = lift_by_clique(&g, p);
            assert_eq!(chordal::is_chordal(&lifted.graph), chordal::is_chordal(&g));
            assert_eq!(
                greedy::is_greedy_k_colorable(&lifted.graph, omega + p),
                greedy::is_greedy_k_colorable(&g, omega)
            );
            assert_eq!(
                coalesce_graph::coloring::is_k_colorable(&lifted.graph, omega + p),
                coalesce_graph::coloring::is_k_colorable(&g, omega)
            );
        }
    }
}
