//! Regression suite for the experiment runner: golden-file JSON pins, the
//! serial/parallel byte-identity guarantee of `--jobs`, and the E4
//! wall-clock budget that keeps the exponential blow-up from returning.

use coalesce_bench::experiments::reductions;
use coalesce_bench::{run_experiment, run_reports, ExperimentId, ExperimentReport, Json};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The serial full sweep at seed 42, computed once and shared by every
/// test in this binary that needs it (the sweep is deterministic, so
/// sharing cannot mask cross-run differences).
fn serial_sweep() -> &'static [ExperimentReport] {
    static SWEEP: OnceLock<Vec<ExperimentReport>> = OnceLock::new();
    SWEEP.get_or_init(|| run_reports(&ExperimentId::ALL, 42, 1))
}

/// Drops the measured-throughput summary lines (E16's `functions_per_sec`
/// and `elapsed_ms` vary run to run by construction) so byte-compares only
/// see the deterministic part of a report.  The CI `cmp` step applies the
/// same filter before comparing `--jobs 1` and `--jobs 4` artifacts.
fn mask_timing(s: &str) -> String {
    s.lines()
        .filter(|l| !l.contains("_per_sec") && !l.contains("elapsed_ms"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Removes every `"stats"` pass-counter object, recursively, so a run
/// with the counter sink disabled (empty objects) can be compared to a
/// default-level run on all the *other* deterministic fields.
fn strip_stats(json: &Json) -> Json {
    match json {
        Json::Object(pairs) => Json::Object(
            pairs
                .iter()
                .filter(|(k, _)| k != "stats")
                .map(|(k, v)| (k.clone(), strip_stats(v)))
                .collect(),
        ),
        Json::Array(items) => Json::Array(items.iter().map(strip_stats).collect()),
        other => other.clone(),
    }
}

/// `run-experiments --experiment e1 --seed 42` must reproduce the
/// committed fixture byte-for-byte.  If this fails because the E1 report
/// format deliberately changed, regenerate the fixture with
/// `run-experiments --experiment e1 --seed 42 --quiet --json tests/fixtures/e1_seed42.json`.
#[test]
fn e1_seed_42_matches_the_golden_fixture() {
    let fixture = include_str!("fixtures/e1_seed42.json");
    let current = run_experiment(ExperimentId::E1, 42)
        .to_json()
        .to_pretty_string();
    assert_eq!(
        current, fixture,
        "E1 seed-42 JSON deviates from tests/fixtures/e1_seed42.json"
    );
}

/// The golden fixture itself parses, and its invariants hold: Theorem 2's
/// `min_cut == exact_uncoalesced` on every row.
#[test]
fn the_golden_fixture_is_internally_consistent() {
    let doc = Json::parse(include_str!("fixtures/e1_seed42.json")).unwrap();
    let rows = doc.get("rows").and_then(Json::as_array).unwrap();
    assert_eq!(rows.len(), 4);
    for row in rows {
        assert_eq!(row.get("equal").and_then(Json::as_bool), Some(true));
    }
}

/// `run-experiments --experiment e13 --seed 42` must reproduce the
/// committed fixture byte-for-byte.  If this fails because the E13 report
/// format deliberately changed, regenerate the fixture with
/// `run-experiments --experiment e13 --seed 42 --quiet --json tests/fixtures/e13_seed42.json`.
#[test]
fn e13_seed_42_matches_the_golden_fixture() {
    let fixture = include_str!("fixtures/e13_seed42.json");
    // The shared serial sweep's E13 report is exactly
    // `run_experiment(ExperimentId::E13, 42)` (pinned by the jobs-identity
    // tests); reusing it keeps this binary's wall clock down.
    let current = serial_sweep()
        .iter()
        .find(|r| r.id == ExperimentId::E13)
        .expect("sweep contains e13")
        .to_json()
        .to_pretty_string();
    assert_eq!(
        current, fixture,
        "E13 seed-42 JSON deviates from tests/fixtures/e13_seed42.json"
    );
}

/// The E13 fixture parses, covers the full 3-profile × 3-pressure sweep,
/// and its acceptance invariants hold on every row: strict SSA, reducible,
/// chordal, and a chordal coloring with exactly `Maxlive` colors.
#[test]
fn the_e13_fixture_is_internally_consistent() {
    let doc = Json::parse(include_str!("fixtures/e13_seed42.json")).unwrap();
    let rows = doc.get("rows").and_then(Json::as_array).unwrap();
    assert!(rows.len() >= 9, "3 profiles x 3 pressures at minimum");
    let mut cells = std::collections::BTreeSet::new();
    for row in rows {
        let profile = row.get("profile").and_then(Json::as_str).unwrap();
        let pressure = row.get("pressure").and_then(Json::as_str).unwrap();
        cells.insert((profile.to_owned(), pressure.to_owned()));
        for key in [
            "strict_ssa",
            "reducible",
            "chordal",
            "chordal_colors_eq_maxlive",
        ] {
            assert_eq!(row.get(key).and_then(Json::as_bool), Some(true), "{key}");
        }
        assert_eq!(
            row.get("chordal_colors").and_then(Json::as_u64),
            row.get("maxlive").and_then(Json::as_u64),
        );
    }
    assert_eq!(cells.len(), 9, "sweep must cross 3 profiles x 3 pressures");
}

/// E13's per-cell rows must not depend on `--jobs` (they are fanned over
/// the worker pool like E1/E4/E5/E7's).
#[test]
fn e13_rows_are_byte_identical_for_any_jobs_value() {
    let serial = serial_sweep()
        .iter()
        .find(|r| r.id == ExperimentId::E13)
        .expect("sweep contains e13")
        .to_json()
        .to_pretty_string();
    let parallel = coalesce_bench::run_experiment_with_jobs(ExperimentId::E13, 42, 4)
        .to_json()
        .to_pretty_string();
    assert_eq!(serial, parallel);
}

/// `--jobs 4` must produce byte-identical output to `--jobs 1` for the
/// full `--experiment all` sweep (the CLI's core determinism guarantee;
/// `run_reports` is exactly the function the binary calls).
#[test]
fn jobs_4_output_is_byte_identical_to_jobs_1_for_all_experiments() {
    let serialize = |reports: &[ExperimentReport]| -> String {
        // The CLI's multi-report wrapper shape.
        Json::object([
            ("base_seed", Json::from(42u64)),
            (
                "experiments",
                Json::Array(reports.iter().map(|r| r.to_json()).collect()),
            ),
        ])
        .to_pretty_string()
    };
    let serial = mask_timing(&serialize(serial_sweep()));
    let parallel = mask_timing(&serialize(&run_reports(&ExperimentId::ALL, 42, 4)));
    assert_eq!(
        serial, parallel,
        "--jobs must never change the deterministic report fields"
    );
}

/// The full sweep at seed 42 must stay consistent with the committed
/// `BENCH_baseline.json` on the structural/invariant level the CI
/// `bench-diff` step checks: same experiments, same row counts, and every
/// boolean invariant column still true where the baseline says so.
#[test]
fn the_sweep_matches_the_committed_baseline_invariants() {
    let baseline = Json::parse(include_str!("../BENCH_baseline.json")).unwrap();
    let reports = serial_sweep();
    let baseline_experiments = baseline
        .get("experiments")
        .and_then(Json::as_array)
        .unwrap();
    assert_eq!(baseline_experiments.len(), reports.len());
    for (report, base) in reports.iter().zip(baseline_experiments) {
        assert_eq!(
            Some(report.id.as_str()),
            base.get("experiment").and_then(Json::as_str)
        );
        let base_rows = base.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(
            report.rows.len(),
            base_rows.len(),
            "{}: row count drifted from BENCH_baseline.json",
            report.id
        );
    }
}

/// `run-experiments --experiment e15 --seed 42` must reproduce the
/// committed fixture byte-for-byte.  If this fails because the E15 report
/// format deliberately changed, regenerate the fixture with
/// `run-experiments --experiment e15 --seed 42 --quiet --json tests/fixtures/e15_seed42.json`.
#[test]
fn e15_seed_42_matches_the_golden_fixture() {
    let fixture = include_str!("fixtures/e15_seed42.json");
    let current = serial_sweep()
        .iter()
        .find(|r| r.id == ExperimentId::E15)
        .expect("sweep contains e15")
        .to_json()
        .to_pretty_string();
    assert_eq!(
        current, fixture,
        "E15 seed-42 JSON deviates from tests/fixtures/e15_seed42.json"
    );
}

/// The E15 fixture parses, covers the interval sweep up to n = 50 000 and
/// CFG programs of ≥ 2000 blocks, and its invariants hold: strict SSA,
/// chordal interference graphs with ω = Maxlive, and the declared
/// wall-clock budget field.
#[test]
fn the_e15_fixture_is_internally_consistent() {
    let doc = Json::parse(include_str!("fixtures/e15_seed42.json")).unwrap();
    let rows = doc.get("rows").and_then(Json::as_array).unwrap();
    let interval_ns: Vec<u64> = rows
        .iter()
        .filter(|r| r.get("kind").and_then(Json::as_str) == Some("interval"))
        .filter_map(|r| r.get("n").and_then(Json::as_u64))
        .collect();
    assert_eq!(interval_ns, vec![5_000, 20_000, 50_000]);
    let cfg_rows: Vec<&Json> = rows
        .iter()
        .filter(|r| r.get("kind").and_then(Json::as_str) == Some("cfg"))
        .collect();
    assert!(cfg_rows.len() >= 2);
    for row in cfg_rows {
        assert!(row.get("blocks").and_then(Json::as_u64).unwrap() >= 2000);
        assert_eq!(row.get("strict_ssa").and_then(Json::as_bool), Some(true));
        assert_eq!(
            row.get("chordal_omega_is_maxlive").and_then(Json::as_bool),
            Some(true)
        );
        // Spilling to the tight k must have brought pressure down to (or
        // near) the target; `maxlive_after` can only exceed `k` when an
        // instruction's operands alone do.
        let k = row.get("k").and_then(Json::as_u64).unwrap();
        let after = row.get("maxlive_after").and_then(Json::as_u64).unwrap();
        let before = row.get("maxlive").and_then(Json::as_u64).unwrap();
        assert!(after < before, "spilling must lower the precise Maxlive");
        assert!(after <= k + 2, "maxlive_after {after} far above k {k}");
    }
    assert_eq!(
        doc.get("summary")
            .and_then(|s| s.get("budget_ms"))
            .and_then(Json::as_u64),
        ExperimentId::E15.budget_ms(),
        "the report must embed the declared wall-clock budget"
    );
}

/// E15's rows must not depend on `--jobs` (they are fanned over the worker
/// pool like E1/E4/E5/E7/E13's).
#[test]
fn e15_rows_are_byte_identical_for_any_jobs_value() {
    let serial = serial_sweep()
        .iter()
        .find(|r| r.id == ExperimentId::E15)
        .expect("sweep contains e15")
        .to_json()
        .to_pretty_string();
    let parallel = coalesce_bench::run_experiment_with_jobs(ExperimentId::E15, 42, 4)
        .to_json()
        .to_pretty_string();
    assert_eq!(serial, parallel);
}

/// `run-experiments --experiment e16 --seed 42` must reproduce the
/// committed fixture byte-for-byte on every deterministic field (the two
/// measured-throughput summary lines are masked on both sides).  If this
/// fails because the E16 report format deliberately changed, regenerate
/// the fixture with
/// `run-experiments --experiment e16 --seed 42 --quiet --json tests/fixtures/e16_seed42.json`.
#[test]
fn e16_seed_42_matches_the_golden_fixture() {
    let fixture = mask_timing(include_str!("fixtures/e16_seed42.json"));
    let current = serial_sweep()
        .iter()
        .find(|r| r.id == ExperimentId::E16)
        .expect("sweep contains e16")
        .to_json()
        .to_pretty_string();
    assert_eq!(
        mask_timing(&current),
        fixture,
        "E16 seed-42 JSON deviates from tests/fixtures/e16_seed42.json"
    );
}

/// The E16 fixture parses, covers the full 3-profile × 3-pressure grid
/// with the whole 1000-function module accounted for, and its invariants
/// hold: strict SSA everywhere, a sane flat-IR footprint (≥ the 16-byte
/// instruction record, under 100 bytes/instr), non-negative aggregate
/// spill fields, the declared wall-clock budget, and a positive measured
/// throughput.
#[test]
fn the_e16_fixture_is_internally_consistent() {
    let doc = Json::parse(include_str!("fixtures/e16_seed42.json")).unwrap();
    let rows = doc.get("rows").and_then(Json::as_array).unwrap();
    assert_eq!(rows.len(), 9, "3 profiles x 3 pressures");
    let mut cells = std::collections::BTreeSet::new();
    let mut functions = 0;
    for row in rows {
        let profile = row.get("profile").and_then(Json::as_str).unwrap();
        let pressure = row.get("pressure").and_then(Json::as_str).unwrap();
        cells.insert((profile.to_owned(), pressure.to_owned()));
        functions += row.get("functions").and_then(Json::as_u64).unwrap();
        let bpi = row
            .get("bytes_per_instr_x100")
            .and_then(Json::as_u64)
            .unwrap();
        assert!(
            (1600..10_000).contains(&bpi),
            "{profile}/{pressure}: {bpi} centibytes/instr outside the sane range"
        );
        for key in ["spilled", "reloads", "spill_weight", "ir_bytes"] {
            assert!(
                row.get(key).and_then(Json::as_u64).is_some(),
                "{profile}/{pressure}: `{key}` missing or negative"
            );
        }
    }
    assert_eq!(cells.len(), 9, "grid must cross 3 profiles x 3 pressures");
    assert_eq!(functions, 1000, "the whole module must be accounted for");
    let summary = doc.get("summary").unwrap();
    assert_eq!(
        summary.get("strict_ssa_all").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        summary.get("budget_ms").and_then(Json::as_u64),
        ExperimentId::E16.budget_ms(),
        "the report must embed the declared wall-clock budget"
    );
    assert!(summary.get("functions_per_sec").and_then(Json::as_u64) > Some(0));
}

/// E16's rows must not depend on `--jobs`: the per-function work fans over
/// the worker pool, and everything except the masked throughput summary
/// is byte-identical for any jobs value.
#[test]
fn e16_rows_are_byte_identical_for_any_jobs_value() {
    let serial = serial_sweep()
        .iter()
        .find(|r| r.id == ExperimentId::E16)
        .expect("sweep contains e16")
        .to_json()
        .to_pretty_string();
    let parallel = coalesce_bench::run_experiment_with_jobs(ExperimentId::E16, 42, 4)
        .to_json()
        .to_pretty_string();
    assert_eq!(mask_timing(&serial), mask_timing(&parallel));
}

/// The E16 wall-clock budget: generating, analysing and spilling the whole
/// 1000-function module must finish within the declared 10-second budget
/// even serially in debug (release with `--jobs` runs in a fraction of
/// it).  A per-function superlinearity anywhere in the flat-IR pipeline —
/// generation, liveness, spilling — blows this immediately at 1000
/// functions.
#[test]
fn e16_module_allocation_stays_within_the_wall_clock_budget() {
    let start = Instant::now();
    let report = coalesce_bench::experiments::module::e16_report_with_jobs(42, 1);
    let elapsed = start.elapsed();
    assert_eq!(report.rows.len(), 9);
    let budget = Duration::from_millis(ExperimentId::E16.budget_ms().unwrap());
    assert!(
        elapsed < budget,
        "whole-module allocation took {elapsed:?} (budget: {budget:?}) — check \
         the flat-IR generation/liveness/spill pipeline for a superlinear step"
    );
}

/// `run-experiments --experiment e17 --seed 42` must reproduce the
/// committed fixture byte-for-byte on every deterministic field (the
/// per-spiller and total wall-clock summary lines are masked on both
/// sides).  If this fails because the E17 report format deliberately
/// changed, regenerate the fixture with
/// `run-experiments --experiment e17 --seed 42 --quiet --json tests/fixtures/e17_seed42.json`.
#[test]
fn e17_seed_42_matches_the_golden_fixture() {
    let fixture = mask_timing(include_str!("fixtures/e17_seed42.json"));
    let current = serial_sweep()
        .iter()
        .find(|r| r.id == ExperimentId::E17)
        .expect("sweep contains e17")
        .to_json()
        .to_pretty_string();
    assert_eq!(
        mask_timing(&current),
        fixture,
        "E17 seed-42 JSON deviates from tests/fixtures/e17_seed42.json"
    );
}

/// The E17 fixture parses and the rival-spiller sweep is complete and
/// sane: every grid cell ran under all three strategies, the module slice
/// accounts for the same functions under each, every strategy honoured
/// the pressure contract (`maxlive_after ≤ k + 1` on grid cells, where
/// the cell's `k` is far above any structural floor), and the naive
/// spill-everywhere baseline never beats a rival on loop-weighted spill
/// weight (it spills whole candidate sets at once — if a rival ever costs
/// more, its cost model regressed).
#[test]
fn the_e17_fixture_is_internally_consistent() {
    let doc = Json::parse(include_str!("fixtures/e17_seed42.json")).unwrap();
    let rows = doc.get("rows").and_then(Json::as_array).unwrap();
    let spiller_of = |r: &Json| r.get("spiller").and_then(Json::as_str).unwrap().to_owned();
    let grid: Vec<&Json> = rows
        .iter()
        .filter(|r| r.get("scope").and_then(Json::as_str) == Some("grid"))
        .collect();
    let module: Vec<&Json> = rows
        .iter()
        .filter(|r| r.get("scope").and_then(Json::as_str) == Some("module"))
        .collect();
    assert_eq!(grid.len(), 30, "10 grid cells x 3 spillers");
    assert_eq!(module.len(), 3, "one module aggregate per spiller");
    let mut cells = std::collections::BTreeSet::new();
    for row in &grid {
        cells.insert((
            spiller_of(row),
            row.get("profile")
                .and_then(Json::as_str)
                .unwrap()
                .to_owned(),
            row.get("pressure")
                .and_then(Json::as_str)
                .unwrap()
                .to_owned(),
            row.get("reuse_window").and_then(Json::as_u64).unwrap(),
        ));
        let k = row.get("k").and_then(Json::as_u64).unwrap();
        let after = row.get("maxlive_after").and_then(Json::as_u64).unwrap();
        let before = row.get("maxlive").and_then(Json::as_u64).unwrap();
        assert!(
            after <= before,
            "spilling must never raise the precise Maxlive"
        );
        assert!(
            after <= k + 1,
            "{}: maxlive_after {after} above k + 1 = {}",
            spiller_of(row),
            k + 1
        );
    }
    assert_eq!(cells.len(), 30, "every (spiller, cell) pair exactly once");
    for rows in [&grid, &module] {
        let weight = |name: &str| -> u64 {
            rows.iter()
                .filter(|r| spiller_of(r) == name)
                .map(|r| r.get("spill_weight").and_then(Json::as_u64).unwrap())
                .sum()
        };
        let everywhere = weight("everywhere");
        assert!(weight("pressure-greedy") <= everywhere);
        assert!(weight("belady") <= everywhere);
    }
    for row in &module {
        assert_eq!(row.get("functions").and_then(Json::as_u64), Some(150));
        assert!(row.get("within_k").and_then(Json::as_u64).unwrap() <= 150);
    }
    let summary = doc.get("summary").unwrap();
    assert_eq!(
        summary.get("budget_ms").and_then(Json::as_u64),
        ExperimentId::E17.budget_ms(),
        "the report must embed the declared wall-clock budget"
    );
}

/// E17's rows must not depend on `--jobs`: the grid cells and module
/// functions fan over the worker pool, and everything except the masked
/// wall-clock summary lines is byte-identical for any jobs value.
#[test]
fn e17_rows_are_byte_identical_for_any_jobs_value() {
    let serial = serial_sweep()
        .iter()
        .find(|r| r.id == ExperimentId::E17)
        .expect("sweep contains e17")
        .to_json()
        .to_pretty_string();
    let parallel = coalesce_bench::run_experiment_with_jobs(ExperimentId::E17, 42, 4)
        .to_json()
        .to_pretty_string();
    assert_eq!(mask_timing(&serial), mask_timing(&parallel));
}

/// The E17 wall-clock budget: running all three spillers over the full
/// grid and the 150-function module slice must finish within the declared
/// 10-second budget even serially in debug.  A superlinear step in any
/// spiller — the Belady fixpoint rounds included — blows this immediately.
#[test]
fn e17_rival_spillers_stay_within_the_wall_clock_budget() {
    let start = Instant::now();
    let report = coalesce_bench::experiments::spillers::e17_report_with_jobs(42, 1);
    let elapsed = start.elapsed();
    assert_eq!(report.rows.len(), 33);
    let budget = Duration::from_millis(ExperimentId::E17.budget_ms().unwrap());
    assert!(
        elapsed < budget,
        "the rival-spiller sweep took {elapsed:?} (budget: {budget:?}) — \
         check the spillers (including the Belady decision fixpoint) for a \
         superlinear step"
    );
}

/// Every experiment with a wall-clock guard must embed its declared
/// `budget_ms` in the summary — the field `bench-diff` cross-checks
/// against the baseline artifact.
#[test]
fn guarded_experiments_declare_their_budget_in_the_summary() {
    for report in serial_sweep() {
        let declared = report.id.budget_ms();
        let embedded = report
            .summary
            .iter()
            .find(|(k, _)| k == "budget_ms")
            .and_then(|(_, v)| v.as_u64());
        assert_eq!(embedded, declared, "{}", report.id);
    }
}

/// The tentpole guarantee of `coalesce-stats`: every E13–E17 row and
/// summary embeds a non-empty `"stats"` pass-counter object, so the
/// per-pass work (spill victims, solver nodes, MCS bucket operations,
/// liveness worklist iterations, coalescing decisions) is visible in every
/// experiment artifact.
#[test]
fn e13_to_e17_rows_and_summaries_carry_pass_counters() {
    let ids = [
        ExperimentId::E13,
        ExperimentId::E14,
        ExperimentId::E15,
        ExperimentId::E16,
        ExperimentId::E17,
    ];
    for id in ids {
        let report = serial_sweep().iter().find(|r| r.id == id).unwrap();
        for (i, row) in report.rows.iter().enumerate() {
            let Some(Json::Object(stats)) = row.get("stats") else {
                panic!("{id} row {i}: missing `stats` counter object");
            };
            assert!(!stats.is_empty(), "{id} row {i}: empty `stats` object");
        }
        let Some((_, Json::Object(stats))) = report.summary.iter().find(|(k, _)| k == "stats")
        else {
            panic!("{id} summary: missing `stats` counter object");
        };
        assert!(!stats.is_empty(), "{id} summary: empty `stats` object");
        // Timing never leaks into the deterministic counter objects.
        for (key, _) in stats {
            assert!(
                !key.ends_with("_ns") && !key.ends_with("_us") && !key.ends_with("_ms"),
                "{id}: timing field `{key}` inside the stats object"
            );
        }
    }
}

/// The embedded pass counters must be byte-identical for any `--jobs`
/// value: each work unit collects its counters on whichever worker thread
/// runs it, and the results come back in input order, so the fan-out width
/// can never change a single count.  `--jobs 4` is covered by the
/// per-experiment identity tests above; this pushes the counter-bearing
/// experiments through `--jobs 8` as well.
#[test]
fn pass_counters_are_byte_identical_across_jobs_1_4_8() {
    let ids = [
        ExperimentId::E13,
        ExperimentId::E14,
        ExperimentId::E15,
        ExperimentId::E16,
        ExperimentId::E17,
    ];
    for id in ids {
        let serial = serial_sweep()
            .iter()
            .find(|r| r.id == id)
            .unwrap()
            .to_json()
            .to_pretty_string();
        let jobs8 = coalesce_bench::run_experiment_with_jobs(id, 42, 8)
            .to_json()
            .to_pretty_string();
        assert_eq!(
            mask_timing(&serial),
            mask_timing(&jobs8),
            "{id}: --jobs 8 changed a deterministic field (counters included)"
        );
    }
}

/// Repeated runs of the same experiment in one process must agree byte for
/// byte, counters included — the counter sink is per-collect-frame, so no
/// state can leak from one run into the next.
#[test]
fn pass_counters_are_byte_identical_across_repeated_runs() {
    let first = run_experiment(ExperimentId::E13, 42)
        .to_json()
        .to_pretty_string();
    let second = run_experiment(ExperimentId::E13, 42)
        .to_json()
        .to_pretty_string();
    assert_eq!(first, second);
}

/// The `Level::Off` fast path: with the sink disabled the whole E16 module
/// pipeline must still meet its declared wall-clock budget (the counter
/// macros collapse to a single early-return), the counter objects come
/// back empty, and every *other* deterministic field is byte-identical to
/// the default-level run — proving the counters observe the passes without
/// steering them.
#[test]
fn e16_with_stats_off_meets_the_budget_and_changes_nothing_else() {
    let start = Instant::now();
    // `--jobs 1` keeps the work on this thread, where the thread-local
    // Off override is in force; the dispatch wrapper appends `budget_ms`
    // exactly like the sweep does.
    let report = coalesce_stats::with_level(coalesce_stats::Level::Off, || {
        coalesce_bench::run_experiment_with_jobs(ExperimentId::E16, 42, 1)
    });
    let elapsed = start.elapsed();
    let budget = Duration::from_millis(ExperimentId::E16.budget_ms().unwrap());
    assert!(
        elapsed < budget,
        "E16 with stats Off took {elapsed:?} (budget: {budget:?}) — the \
         disabled counter path must stay off the hot loops"
    );
    for (i, row) in report.rows.iter().enumerate() {
        let Some(Json::Object(stats)) = row.get("stats") else {
            panic!("row {i}: missing `stats` object");
        };
        assert!(stats.is_empty(), "row {i}: Off-level run still counted");
    }
    let off = strip_stats(&report.to_json()).to_pretty_string();
    let on = strip_stats(
        &serial_sweep()
            .iter()
            .find(|r| r.id == ExperimentId::E16)
            .unwrap()
            .to_json(),
    )
    .to_pretty_string();
    assert_eq!(
        mask_timing(&off),
        mask_timing(&on),
        "disabling the counter sink changed a deterministic report field"
    );
}

/// The E4 perf-regression budget: all 6 reduction rows of the acceptance
/// seed must finish well under 2 seconds (the seed's naive backtracker
/// took ~25 s in *release*; the pruned solver takes milliseconds, so a
/// generous budget still catches any exponential regression).
#[test]
fn e4_rows_finish_within_the_wall_clock_budget() {
    let start = Instant::now();
    let seeds: Vec<u64> = (0..6u64).map(|s| 42 + 40 + s).collect();
    for &seed in &seeds {
        let row = reductions::e4_row(seed);
        assert!(
            row.invariant_holds(),
            "seed {seed}: Theorem 4 equivalence violated: {row:?}"
        );
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "E4's 6 reduction rows took {elapsed:?} (budget: 2 s) — the \
         exponential blow-up is back; check the ExactSolver prunings"
    );
}

/// The clique-tree perf-regression budget (mirroring the E4 one): building
/// the clique tree of a 2000-vertex random interval graph (~312 k
/// interference edges at the E5 sweep's density) must finish well under
/// 2 seconds.  The pre-Blair–Peyton pipeline was quadratic at every stage
/// (O(n²) MCS scans, O(m²) subset checks, all-pairs Kruskal) and would
/// blow this budget by orders of magnitude; the linear construction takes
/// tens of milliseconds.
#[test]
fn clique_tree_build_at_n_2000_stays_within_the_wall_clock_budget() {
    let n = 2000usize;
    let mut rng = coalesce_gen::rng(42 + n as u64);
    let (g, _) = coalesce_gen::graphs::random_interval_graph(n, 3 * n, n / 2 + 2, &mut rng);
    let start = Instant::now();
    let tree =
        coalesce_graph::cliquetree::CliqueTree::build(&g).expect("interval graphs are chordal");
    let elapsed = start.elapsed();
    assert!(tree.num_nodes() > 0 && tree.clique_number() > 0);
    assert!(
        elapsed < Duration::from_secs(2),
        "CliqueTree::build at n = {n} took {elapsed:?} (budget: 2 s) — the \
         quadratic clique-tree construction is back; check the Blair–Peyton \
         sweep in coalesce_graph::chordal"
    );
}

/// The E15 graph-backend budget: bulk-building the n = 20 000 interval
/// instance *and* its clique tree must finish well under 2 seconds (the
/// release path runs in a few hundred milliseconds).  A per-edge ordered
/// insertion or a quadratic sweep anywhere in `Graph::from_edges` /
/// `random_interval_graph` / the MCS pipeline blows this budget
/// immediately at this size.
#[test]
fn e15_interval_build_at_n_20k_stays_within_the_wall_clock_budget() {
    let n = 20_000usize;
    let start = Instant::now();
    let g = coalesce_bench::experiments::scaling::e15_interval_graph(42, n);
    let tree =
        coalesce_graph::cliquetree::CliqueTree::build(&g).expect("interval graphs are chordal");
    let elapsed = start.elapsed();
    assert_eq!(g.num_vertices(), n);
    assert!(g.num_edges() > 100_000, "instance density collapsed");
    assert!(tree.num_nodes() > 0 && tree.clique_number() > 0);
    assert!(
        elapsed < Duration::from_secs(2),
        "building the n = {n} interval graph + clique tree took {elapsed:?} \
         (budget: 2 s) — check the bulk `Graph::from_edges` path and the \
         sorted-row adjacency backend"
    );
}

/// The incremental-spiller budget: spilling a ≥ 2000-block generated
/// program to a tight `k` must finish well under 4 seconds (release: a
/// fraction of that).  The seed recomputed full liveness and a whole-
/// function candidate scan per victim, which blows this budget by an
/// order of magnitude at this size.
#[test]
fn e15_cfg_spill_at_2k_blocks_stays_within_the_wall_clock_budget() {
    use coalesce_gen::cfg::ShapeProfile;
    let mut f = coalesce_bench::experiments::scaling::e15_cfg_program(42, ShapeProfile::IntBranchy);
    assert!(f.num_blocks() >= 2000);
    let live = coalesce_ir::Liveness::compute(&f);
    let k = (live.maxlive_precise(&f) / 2).max(3);
    let start = Instant::now();
    let result = coalesce_ir::spill::spill_to_pressure(&mut f, k);
    let elapsed = start.elapsed();
    assert!(!result.spilled.is_empty());
    assert!(
        elapsed < Duration::from_secs(4),
        "spill_to_pressure on a {}-block program took {elapsed:?} (budget: \
         4 s) — the per-victim full recomputation is back; check the \
         incremental liveness patch and the cached block statistics",
        f.num_blocks()
    );
}

/// `run-experiments --experiment e18 --seed 42` must reproduce the
/// committed fixture byte-for-byte on every deterministic field (the
/// throughput and latency summary lines are masked on both sides — E18
/// measures a live worker pool).  If this fails because the E18 report
/// format deliberately changed, regenerate the fixture with
/// `run-experiments --experiment e18 --seed 42 --quiet --json tests/fixtures/e18_seed42.json`.
#[test]
fn e18_seed_42_matches_the_golden_fixture() {
    let fixture = mask_timing(include_str!("fixtures/e18_seed42.json"));
    let current = serial_sweep()
        .iter()
        .find(|r| r.id == ExperimentId::E18)
        .expect("sweep contains e18")
        .to_json()
        .to_pretty_string();
    assert_eq!(
        mask_timing(&current),
        fixture,
        "E18 seed-42 JSON deviates from tests/fixtures/e18_seed42.json"
    );
}

/// The E18 fixture parses and the chaos soak's acceptance invariants
/// hold: every request kind answered, every request accounted for (the
/// per-kind buckets plus the fault-labelled buckets cover the whole
/// trace), the fault rate met its declared ≥ 5% floor, nothing failed
/// re-verification, and the zero-crash invariant held — every worker
/// exited cleanly despite the injected parser garbage and panic requests.
#[test]
fn the_e18_fixture_is_internally_consistent() {
    let doc = Json::parse(include_str!("fixtures/e18_seed42.json")).unwrap();
    let rows = doc.get("rows").and_then(Json::as_array).unwrap();
    // Fault lines are bucketed twice by design: once under the generic
    // `fault` kind and once under their specific fault label, so the
    // per-flavour outcomes stay visible without disturbing the per-kind
    // accounting.
    let kinds = ["dimacs", "challenge", "cfg", "module_slice", "fault"];
    let mut kind_total = 0;
    let mut fault_kind_total = 0;
    let mut fault_label_total = 0;
    for row in rows {
        let bucket = row.get("bucket").and_then(Json::as_str).unwrap();
        let count = row.get("count").and_then(Json::as_u64).unwrap();
        assert!(count > 0, "{bucket}: empty buckets must not be emitted");
        if kinds.contains(&bucket) {
            kind_total += count;
            if bucket == "fault" {
                fault_kind_total += count;
            }
        } else {
            fault_label_total += count;
        }
    }
    for kind in kinds {
        assert!(
            rows.iter()
                .any(|r| r.get("bucket").and_then(Json::as_str) == Some(kind)),
            "trace must exercise the `{kind}` request kind"
        );
    }
    let summary = doc.get("summary").unwrap();
    let field = |k: &str| summary.get(k).and_then(Json::as_u64).unwrap();
    let requests = field("requests");
    assert_eq!(kind_total, requests, "every request bucketed exactly once");
    assert_eq!(fault_kind_total, field("fault_lines"));
    assert_eq!(
        fault_label_total, fault_kind_total,
        "labels re-bucket every fault line"
    );
    assert!(
        field("fault_lines") * 100 >= requests * field("fault_percent_min"),
        "fault injection below the declared floor"
    );
    assert_eq!(field("ok") + field("degraded") + field("errors"), requests);
    assert_eq!(field("verify_failures"), 0);
    assert!(field("verified_ok") > 0, "re-verification must have run");
    assert_eq!(
        summary.get("zero_crashes").and_then(Json::as_bool),
        Some(true),
        "the zero-crash invariant is E18's acceptance criterion"
    );
    assert_eq!(field("clean_worker_exits"), field("workers"));
    assert_eq!(
        summary.get("budget_ms").and_then(Json::as_u64),
        ExperimentId::E18.budget_ms(),
        "the report must embed the declared wall-clock budget"
    );
}

/// E18's rows must not depend on `--jobs`: requests are submitted
/// blocking and every engine decision is structural (budget estimates,
/// size gates), so the bucket rows are byte-identical for any pool width.
/// The summary is compared after masking the measured throughput/latency
/// lines *and* the two fields that legitimately scale with the pool
/// (`workers`, `clean_worker_exits`).
#[test]
fn e18_rows_are_byte_identical_for_any_jobs_value() {
    let serial = serial_sweep()
        .iter()
        .find(|r| r.id == ExperimentId::E18)
        .expect("sweep contains e18");
    let parallel = coalesce_bench::run_experiment_with_jobs(ExperimentId::E18, 42, 4);
    let rows = |r: &ExperimentReport| Json::Array(r.rows.clone()).to_pretty_string();
    assert_eq!(
        rows(serial),
        rows(&parallel),
        "bucket rows must not depend on --jobs"
    );
    let summary = |r: &ExperimentReport| {
        Json::Object(
            r.summary
                .iter()
                .filter(|(k, _)| k != "workers" && k != "clean_worker_exits")
                .cloned()
                .collect(),
        )
        .to_pretty_string()
    };
    assert_eq!(
        mask_timing(&summary(serial)),
        mask_timing(&summary(&parallel)),
        "--jobs changed a deterministic E18 summary field"
    );
}

/// The E18 wall-clock budget: replaying the full fault-injected trace
/// through the live worker pool must finish within the declared 10-second
/// budget even serially in debug (the measured runs take a fraction of
/// it).  A stall here means a worker deadlocked or the backpressure path
/// stopped draining.
#[test]
fn e18_chaos_soak_stays_within_the_wall_clock_budget() {
    let start = Instant::now();
    let report = coalesce_bench::experiments::soak::e18_report_with_jobs(42, 1);
    let elapsed = start.elapsed();
    assert!(!report.rows.is_empty());
    let budget = Duration::from_millis(ExperimentId::E18.budget_ms().unwrap());
    assert!(
        elapsed < budget,
        "the chaos soak took {elapsed:?} (budget: {budget:?}) — check the \
         serving queue for a stall or a dead worker"
    );
}
