//! Equivalence suite for the PR-5 data-structure backends.
//!
//! The sorted-row adjacency `Graph` replaced the `BTreeSet`-per-vertex
//! representation, and the bitset worklist `Liveness` replaced the cloned
//! `BTreeSet` dataflow; these tests pin both to verbatim reference
//! implementations of the old behavior — same edge sets, degrees, merge
//! results and chordality verdicts on random interval and
//! clique-attachment graphs, and identical per-block / per-point live sets
//! on generated CFG programs, including across the incremental
//! `apply_spill_rewrite` patch the spiller relies on.

use coalesce_gen::cfg::{generate, PressureLevel, ShapeProfile};
use coalesce_gen::graphs::{random_chordal_graph, random_interval_graph};
use coalesce_graph::{chordal, Graph, VertexId};
use coalesce_ir::function::{BlockId, Function, InstrView, Var};
use coalesce_ir::liveness::Liveness;
use coalesce_ir::spill::{spill_everywhere, SpillResult};
use proptest::prelude::*;
use rand::Rng;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Reference graph: the seed's BTreeSet-adjacency implementation, verbatim.
// ---------------------------------------------------------------------------

/// The old adjacency-set graph, kept as the behavioral reference for edge
/// bookkeeping and merging.
#[derive(Clone, Default)]
struct SetGraph {
    adj: Vec<BTreeSet<usize>>,
    alive: Vec<bool>,
    num_edges: usize,
}

impl SetGraph {
    fn new(n: usize) -> Self {
        SetGraph {
            adj: vec![BTreeSet::new(); n],
            alive: vec![true; n],
            num_edges: 0,
        }
    }

    fn add_edge(&mut self, u: usize, v: usize) {
        assert!(self.alive[u] && self.alive[v] && u != v);
        if self.adj[u].insert(v) {
            self.adj[v].insert(u);
            self.num_edges += 1;
        }
    }

    fn merge(&mut self, into: usize, from: usize) {
        assert!(self.alive[into] && self.alive[from] && into != from);
        assert!(!self.adj[into].contains(&from));
        let nbrs: Vec<usize> = self.adj[from].iter().copied().collect();
        for u in nbrs {
            self.adj[u].remove(&from);
            self.num_edges -= 1;
            if self.adj[into].insert(u) {
                self.adj[u].insert(into);
                self.num_edges += 1;
            }
        }
        self.adj[from].clear();
        self.alive[from] = false;
    }

    fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (u, row) in self.adj.iter().enumerate() {
            if !self.alive[u] {
                continue;
            }
            for &v in row {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    fn degrees(&self) -> Vec<(usize, usize)> {
        self.adj
            .iter()
            .enumerate()
            .filter(|(u, _)| self.alive[*u])
            .map(|(u, row)| (u, row.len()))
            .collect()
    }
}

fn flat_edges(g: &Graph) -> Vec<(usize, usize)> {
    g.edges().map(|(u, v)| (u.index(), v.index())).collect()
}

fn flat_degrees(g: &Graph) -> Vec<(usize, usize)> {
    g.vertices().map(|v| (v.index(), g.degree(v))).collect()
}

fn assert_same_graph(flat: &Graph, reference: &SetGraph) {
    assert_eq!(flat.num_edges(), reference.num_edges);
    assert_eq!(flat_edges(flat), reference.edges());
    assert_eq!(flat_degrees(flat), reference.degrees());
}

/// Strategy: an edge list over up to 24 vertices, with duplicates.
fn arbitrary_edge_list() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..24).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n), 0..80).prop_map(|pairs| {
                pairs
                    .into_iter()
                    .filter(|(a, b)| a != b)
                    .collect::<Vec<_>>()
            }),
        )
    })
}

proptest! {
    /// Bulk construction, incremental insertion and the reference all
    /// agree on the edge set and the degrees, duplicates included.
    #[test]
    fn bulk_and_incremental_construction_match_the_reference(
        (n, edges) in arbitrary_edge_list()
    ) {
        let bulk = Graph::from_edges(
            n,
            edges.iter().map(|&(a, b)| (VertexId::new(a), VertexId::new(b))),
        );
        let mut incremental = Graph::new(n);
        let mut reference = SetGraph::new(n);
        for &(a, b) in &edges {
            incremental.add_edge(VertexId::new(a), VertexId::new(b));
            reference.add_edge(a, b);
        }
        assert_same_graph(&bulk, &reference);
        assert_same_graph(&incremental, &reference);
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    prop_assert_eq!(
                        bulk.has_edge(VertexId::new(a), VertexId::new(b)),
                        reference.adj[a].contains(&b)
                    );
                }
            }
        }
    }

    /// Random valid merge sequences leave the flat graph and the reference
    /// with identical edges, degrees and edge counts.
    #[test]
    fn merge_sequences_match_the_reference(
        (n, edges) in arbitrary_edge_list(),
        merge_picks in proptest::collection::vec((0usize..24, 0usize..24), 0..12)
    ) {
        let mut flat = Graph::from_edges(
            n,
            edges.iter().map(|&(a, b)| (VertexId::new(a), VertexId::new(b))),
        );
        let mut reference = SetGraph::new(n);
        for &(a, b) in &edges {
            reference.add_edge(a, b);
        }
        for (a, b) in merge_picks {
            let (a, b) = (a % n, b % n);
            if a == b || !flat.is_live(VertexId::new(a)) || !flat.is_live(VertexId::new(b)) {
                continue;
            }
            if flat.has_edge(VertexId::new(a), VertexId::new(b)) {
                continue;
            }
            flat.merge(VertexId::new(a), VertexId::new(b));
            reference.merge(a, b);
            prop_assert_eq!(flat.representative(VertexId::new(b)), VertexId::new(a));
            assert_same_graph(&flat, &reference);
        }
    }
}

#[test]
fn chordality_verdicts_match_across_construction_paths() {
    // Interval graphs (chordal by construction) and clique-attachment
    // graphs, built via the generator (bulk path for intervals) and
    // rebuilt per-edge: identical verdicts, cliques and clique numbers.
    for seed in 0..12u64 {
        let mut rng = coalesce_gen::rng(seed);
        let (g, _) = random_interval_graph(40, 60, 12, &mut rng);
        let mut rng = coalesce_gen::rng(seed + 100);
        let h = random_chordal_graph(35, 5, &mut rng);
        for g in [g, h] {
            let rebuilt = Graph::from_edges(g.capacity(), g.edges());
            assert!(chordal::is_chordal(&g), "seed {seed}");
            assert_eq!(
                chordal::is_chordal(&g),
                chordal::is_chordal(&rebuilt),
                "seed {seed}"
            );
            assert_eq!(
                chordal::chordal_clique_number(&g),
                chordal::chordal_clique_number(&rebuilt),
                "seed {seed}"
            );
            assert_eq!(
                chordal::chordal_maximal_cliques(&g),
                chordal::chordal_maximal_cliques(&rebuilt),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn non_chordal_graphs_stay_non_chordal_through_the_bulk_path() {
    for n in 4..10usize {
        let cycle = Graph::from_edges(
            n,
            (0..n).map(|i| (VertexId::new(i), VertexId::new((i + 1) % n))),
        );
        assert!(!chordal::is_chordal(&cycle), "C{n}");
    }
}

// ---------------------------------------------------------------------------
// Reference liveness: the seed's BTreeSet dataflow, verbatim.
// ---------------------------------------------------------------------------

struct SetLiveness {
    live_in: Vec<BTreeSet<Var>>,
    live_out: Vec<BTreeSet<Var>>,
}

impl SetLiveness {
    /// The old round-robin iterate-to-fixpoint implementation.
    fn compute(f: &Function) -> Self {
        let n = f.num_blocks();
        let mut live_in: Vec<BTreeSet<Var>> = vec![BTreeSet::new(); n];
        let mut live_out: Vec<BTreeSet<Var>> = vec![BTreeSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for bi in (0..n).rev() {
                let b = BlockId::new(bi);
                let mut out: BTreeSet<Var> = BTreeSet::new();
                for s in f.successors(b) {
                    let mut from_s = live_in[s.index()].clone();
                    for phi in f.phis(s) {
                        if let InstrView::Phi { dst, args } = phi {
                            from_s.remove(&dst);
                            for a in args {
                                if a.pred == b {
                                    from_s.insert(a.value);
                                }
                            }
                        }
                    }
                    out.extend(from_s);
                }
                let mut live = out.clone();
                for v in f.terminator(b).uses() {
                    live.insert(v);
                }
                for instr in f.block_instrs(b).rev() {
                    if let Some(d) = instr.def() {
                        live.remove(&d);
                    }
                    for &u in instr.local_uses() {
                        live.insert(u);
                    }
                }
                if out != live_out[bi] {
                    live_out[bi] = out;
                    changed = true;
                }
                if live != live_in[bi] {
                    live_in[bi] = live;
                    changed = true;
                }
            }
        }
        SetLiveness { live_in, live_out }
    }
}

fn assert_same_liveness(f: &Function, bitset: &Liveness, reference: &SetLiveness) {
    for b in f.block_ids() {
        let bits_in: Vec<Var> = bitset.live_in(b).iter().collect();
        let ref_in: Vec<Var> = reference.live_in[b.index()].iter().copied().collect();
        assert_eq!(bits_in, ref_in, "live-in of {b:?} diverged");
        let bits_out: Vec<Var> = bitset.live_out(b).iter().collect();
        let ref_out: Vec<Var> = reference.live_out[b.index()].iter().copied().collect();
        assert_eq!(bits_out, ref_out, "live-out of {b:?} diverged");
    }
}

/// The generated CFG workloads the equivalence is checked on: every shape
/// profile at low pressure plus one medium-pressure loop nest.
fn workload_functions() -> Vec<Function> {
    let mut out = Vec::new();
    for (i, profile) in ShapeProfile::ALL.into_iter().enumerate() {
        let params = profile.params(PressureLevel::Low.pressure());
        out.push(generate(&params, &mut coalesce_gen::rng(7 + i as u64)));
    }
    let params = ShapeProfile::FpLoopNest.params(PressureLevel::Medium.pressure());
    out.push(generate(&params, &mut coalesce_gen::rng(23)));
    out
}

#[test]
fn bitset_liveness_matches_the_btreeset_reference_on_generated_cfgs() {
    for (i, f) in workload_functions().into_iter().enumerate() {
        let bitset = Liveness::compute(&f);
        let reference = SetLiveness::compute(&f);
        assert_same_liveness(&f, &bitset, &reference);
        // The streamed per-point cursor agrees with a reference backward
        // walk too (spot-check the first blocks to keep the test quick).
        for b in f.block_ids().take(16) {
            let points = bitset.live_points(&f, b);
            let n_instrs = f.num_instrs(b);
            let mut live = reference.live_out[b.index()].clone();
            for v in f.terminator(b).uses() {
                live.insert(v);
            }
            let expect: Vec<Var> = live.iter().copied().collect();
            let got: Vec<Var> = points[n_instrs].iter().collect();
            assert_eq!(got, expect, "program {i}: point {n_instrs} of {b:?}");
            for (j, instr) in f.block_instrs(b).enumerate().rev() {
                if let Some(d) = instr.def() {
                    live.remove(&d);
                }
                for &u in instr.local_uses() {
                    live.insert(u);
                }
                let expect: Vec<Var> = live.iter().copied().collect();
                let got: Vec<Var> = points[j].iter().collect();
                assert_eq!(got, expect, "program {i}: point {j} of {b:?}");
            }
        }
    }
}

#[test]
fn incremental_spill_patch_equals_a_full_recomputation() {
    // Spill a handful of victims from each workload; after every rewrite
    // the patched liveness must equal a from-scratch fixpoint exactly
    // (`Liveness` compares by set contents).
    for f in workload_functions() {
        let mut f = f;
        let mut liveness = Liveness::compute(&f);
        let costs = coalesce_ir::spill::spill_costs(&f);
        // Victims: the most expensive variables with at least one use —
        // a deterministic, rewrite-heavy selection.
        let mut by_cost: Vec<Var> = (0..f.num_vars()).map(Var::new).collect();
        by_cost.sort_by_key(|v| std::cmp::Reverse(costs[v.index()]));
        let mut spilled = 0;
        for victim in by_cost {
            if spilled >= 5 {
                break;
            }
            // Only spill variables that actually appear as uses.
            let used = f
                .instructions()
                .any(|(_, _, i)| i.local_uses().contains(&victim))
                || f.block_ids().any(|b| {
                    f.terminator(b).uses().contains(&victim)
                        || f.phis(b).any(|p| match p {
                            InstrView::Phi { args, .. } => args.iter().any(|a| a.value == victim),
                            _ => false,
                        })
                });
            if !used {
                continue;
            }
            let mut result = SpillResult::default();
            let rewrite = spill_everywhere(&mut f, victim, &mut result);
            liveness.apply_spill_rewrite(victim, &rewrite.phi_pred_reloads);
            assert_eq!(
                liveness,
                Liveness::compute(&f),
                "patched liveness diverged after spilling {victim:?}"
            );
            spilled += 1;
        }
        assert!(spilled > 0, "workload produced no spillable victim");
    }
}

#[test]
fn spill_to_pressure_still_lowers_pressure_on_random_programs() {
    // End-to-end guard over the incremental spiller on less structured
    // inputs than the workload generator produces.
    for seed in 0..6u64 {
        let mut rng = coalesce_gen::rng(seed * 31 + 5);
        let params = coalesce_gen::programs::ProgramParams::default();
        let mut f = coalesce_gen::programs::random_ssa_program(&params, &mut rng);
        let before = Liveness::compute(&f).maxlive_precise(&f);
        if before <= 3 {
            continue;
        }
        let k = (before / 2).max(2) + (rng.gen_range(0..2) as usize);
        let result = coalesce_ir::spill::spill_to_pressure(&mut f, k);
        assert!(f.validate().is_ok(), "seed {seed}");
        let after = Liveness::compute(&f).maxlive_precise(&f);
        assert!(
            after <= before,
            "seed {seed}: pressure rose from {before} to {after}"
        );
        if !result.spilled.is_empty() {
            assert!(result.reloads > 0, "seed {seed}");
        }
    }
}
