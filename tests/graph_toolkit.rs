//! Property-based tests for the graph-substrate extensions: LexBFS,
//! minimal triangulation, interval models, file formats and the
//! Theorem-5-guided chordal coalescing strategy.

use coalesce_core::affinity::{Affinity, AffinityGraph};
use coalesce_core::chordal_strategy::{
    chordal_conservative_coalesce, result_is_k_colorable, ChordalMode,
};
use coalesce_gen::{families, graphs};
use coalesce_graph::format::{from_challenge, to_challenge, to_dimacs, ChallengeFile};
use coalesce_graph::{
    chordal, cliques, coloring, fillin, format, interval, lexbfs, stats, Graph, VertexId,
};
use proptest::prelude::*;

fn arbitrary_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(|n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .collect();
        let len = pairs.len();
        proptest::collection::vec(any::<bool>(), len).prop_map(move |mask| {
            let mut g = Graph::new(n);
            for (present, &(i, j)) in mask.iter().zip(&pairs) {
                if *present {
                    g.add_edge(VertexId::new(i), VertexId::new(j));
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lexbfs_and_mcs_agree_on_chordality(g in arbitrary_graph(9)) {
        prop_assert_eq!(chordal::is_chordal(&g), lexbfs::is_chordal_lexbfs(&g));
    }

    #[test]
    fn mcs_m_produces_a_chordal_supergraph_with_a_valid_peo(g in arbitrary_graph(9)) {
        let tri = fillin::mcs_m(&g);
        prop_assert!(chordal::is_chordal(&tri.graph));
        prop_assert!(chordal::is_perfect_elimination_ordering(
            &tri.graph,
            &tri.elimination_order
        ));
        // Fill edges are new edges.
        for &(a, b) in &tri.fill_edges {
            prop_assert!(!g.has_edge(a, b));
            prop_assert!(tri.graph.has_edge(a, b));
        }
        // Chordal inputs need no fill.
        if chordal::is_chordal(&g) {
            prop_assert_eq!(tri.fill_in(), 0);
        }
    }

    #[test]
    fn mcs_m_fill_is_minimal_on_small_graphs(g in arbitrary_graph(7)) {
        let tri = fillin::mcs_m(&g);
        prop_assert!(fillin::is_minimal_triangulation(&g, &tri));
    }

    #[test]
    fn dimacs_round_trip_preserves_edges(g in arbitrary_graph(10)) {
        let text = to_dimacs(&g);
        let parsed = format::from_dimacs(&text).expect("writer output parses");
        prop_assert_eq!(parsed.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            prop_assert!(parsed.has_edge(u, v));
        }
    }

    #[test]
    fn challenge_round_trip_preserves_instances(
        g in arbitrary_graph(8),
        weights in proptest::collection::vec(1u64..100, 0..6),
        k in 2usize..8,
    ) {
        // Build affinities between non-adjacent pairs.
        let live: Vec<VertexId> = g.vertices().collect();
        let mut affinities = Vec::new();
        let mut it = weights.iter();
        'outer: for (i, &a) in live.iter().enumerate() {
            for &b in &live[i + 1..] {
                if !g.has_edge(a, b) {
                    match it.next() {
                        Some(&w) => affinities.push((a, b, w)),
                        None => break 'outer,
                    }
                }
            }
        }
        let file = ChallengeFile { graph: g.clone(), affinities: affinities.clone(), registers: Some(k) };
        let parsed = from_challenge(&to_challenge(&file)).expect("round trip");
        prop_assert_eq!(parsed.registers, Some(k));
        prop_assert_eq!(parsed.affinities, affinities);
        prop_assert_eq!(parsed.graph.num_edges(), g.num_edges());
    }

    #[test]
    fn interval_models_realise_their_own_intersection_graphs(
        spans in proptest::collection::vec((0usize..20, 0usize..6), 1..8)
    ) {
        let model = interval::IntervalModel::new(
            spans.len(),
            spans.iter().enumerate().map(|(i, &(s, len))| (VertexId::new(i), s, s + len)),
        );
        let g = model.to_graph();
        prop_assert!(model.is_model_of(&g));
        prop_assert!(interval::is_interval_graph(&g));
        let recovered = interval::interval_model(&g).expect("interval graph has a model");
        prop_assert!(recovered.is_model_of(&g));
        prop_assert_eq!(model.max_overlap(), cliques::clique_number(&g));
    }

    #[test]
    fn graph_stats_are_internally_consistent(g in arbitrary_graph(9)) {
        let st = stats::GraphStats::compute(&g, 16);
        prop_assert_eq!(st.vertices, g.num_vertices());
        prop_assert_eq!(st.edges, g.num_edges());
        prop_assert!(st.min_degree <= st.max_degree);
        prop_assert!(st.clique_number <= st.vertices.max(1));
        // col(G) is an upper bound on χ(G) which is at least ω(G).
        if st.clique_bound_is_exact() {
            prop_assert!(st.coloring_number() >= st.clique_number);
        }
        let hist = stats::degree_histogram(&g);
        prop_assert_eq!(hist.iter().sum::<usize>(), g.num_vertices());
    }

    #[test]
    fn chordal_strategy_outputs_are_k_colorable_on_random_interval_graphs(
        seed in 0u64..500,
        n in 4usize..12,
    ) {
        let mut rng = coalesce_gen::rng(seed);
        let (g, _intervals) = graphs::random_interval_graph(n, 8, 3, &mut rng);
        prop_assume!(chordal::is_chordal(&g));
        let omega = chordal::chordal_clique_number(&g).unwrap_or(0).max(1);
        let k = omega + 1;
        // Affinities between the first few non-adjacent pairs.
        let live: Vec<VertexId> = g.vertices().collect();
        let mut affinities = Vec::new();
        for (i, &a) in live.iter().enumerate() {
            for &b in &live[i + 1..] {
                if !g.has_edge(a, b) && affinities.len() < 5 {
                    affinities.push(Affinity::new(a, b));
                }
            }
        }
        let ag = AffinityGraph::new(g, affinities);
        for mode in [ChordalMode::MergeWitnessClass, ChordalMode::FillIn] {
            let result = chordal_conservative_coalesce(&ag, k, mode)
                .expect("chordal instance within hypotheses");
            prop_assert!(result_is_k_colorable(&result, k));
        }
    }
}

#[test]
fn named_families_expose_the_expected_structure_to_the_strategies() {
    // The interval staircase is the "easy" chordal case: every strategy can
    // run on it and the coloring number equals the clique number.
    let g = families::interval_staircase(20, 3);
    let st = stats::GraphStats::compute(&g, 32);
    assert!(st.chordal);
    assert!(st.interval);
    assert_eq!(st.coloring_number(), st.clique_number);

    // The Mycielski graph is the adversarial case: clique number 2, growing
    // chromatic number — greedy reasoning about colors is maximally wrong.
    let m4 = families::mycielski(4);
    assert_eq!(cliques::clique_number(&m4), 2);
    assert_eq!(coloring::chromatic_number(&m4), 4);
    assert!(!chordal::is_chordal(&m4));
}
