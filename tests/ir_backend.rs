//! Equivalence suite for the PR-6 flat-arena IR backend.
//!
//! The flat `Function` (one instruction arena, handle-indexed blocks,
//! pooled operands) replaced the per-block `Vec<Instr>` layout; these
//! tests pin the analyses that consume it to verbatim reference
//! implementations of the old per-block-`Vec` behavior, materialized
//! through [`Function::block_instrs_owned`]: identical live-in/live-out
//! sets, identical interference edges and affinities (both interference
//! kinds), identical spill costs, and an identical spill-victim sequence
//! from a from-scratch reference spiller — on generated CFG and module
//! workloads.  This mirrors what `tests/graph_backend.rs` does for the
//! PR-5 graph and liveness backends.
//!
//! PR 7 adds the Belady spiller: its boundary next-use distances are
//! pinned to an independent per-variable Dijkstra reference (the pass
//! itself uses a min-plus fixpoint over whole maps), and every
//! [`spill::SpillerKind`] is held to the common pressure contract
//! `Maxlive ≤ max(k, structural floor)`.

use coalesce_gen::cfg::{generate, PressureLevel, ShapeProfile};
use coalesce_gen::module::{module_specs, ModuleParams};
use coalesce_ir::belady::{NextUse, LOOP_EXIT_DISTANCE};
use coalesce_ir::function::{BlockId, Function, Instr, Var};
use coalesce_ir::interference::{BuildOptions, InterferenceGraph, InterferenceKind};
use coalesce_ir::liveness::Liveness;
use coalesce_ir::spill::{self, spill_everywhere, SpillResult, SpillerKind};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

// ---------------------------------------------------------------------------
// The old layout, rematerialized: one owned Vec<Instr> per block.
// ---------------------------------------------------------------------------

/// A function snapshot in the pre-flat layout: per-block owned instruction
/// vectors.  Every reference implementation below walks these vectors the
/// way the old passes walked `f.block(b).instrs`.
struct OwnedBlocks {
    instrs: Vec<Vec<Instr>>,
}

impl OwnedBlocks {
    fn of(f: &Function) -> Self {
        OwnedBlocks {
            instrs: f.block_ids().map(|b| f.block_instrs_owned(b)).collect(),
        }
    }

    fn block(&self, b: BlockId) -> &[Instr] {
        &self.instrs[b.index()]
    }
}

// ---------------------------------------------------------------------------
// Reference liveness: the old BTreeSet dataflow over owned blocks.
// ---------------------------------------------------------------------------

struct RefLiveness {
    live_in: Vec<BTreeSet<Var>>,
    live_out: Vec<BTreeSet<Var>>,
}

impl RefLiveness {
    /// The old round-robin iterate-to-fixpoint implementation, walking the
    /// owned per-block vectors.
    fn compute(f: &Function, owned: &OwnedBlocks) -> Self {
        let n = f.num_blocks();
        let mut live_in: Vec<BTreeSet<Var>> = vec![BTreeSet::new(); n];
        let mut live_out: Vec<BTreeSet<Var>> = vec![BTreeSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for bi in (0..n).rev() {
                let b = BlockId::new(bi);
                let mut out: BTreeSet<Var> = BTreeSet::new();
                for s in f.successors(b) {
                    let mut from_s = live_in[s.index()].clone();
                    for phi in owned.block(s).iter().filter(|i| i.is_phi()) {
                        if let Instr::Phi { dst, args } = phi {
                            from_s.remove(dst);
                            for &(pred, value) in args {
                                if pred == b {
                                    from_s.insert(value);
                                }
                            }
                        }
                    }
                    out.extend(from_s);
                }
                let mut live = out.clone();
                for v in f.terminator(b).uses() {
                    live.insert(v);
                }
                for instr in owned.block(b).iter().rev() {
                    if let Some(d) = instr.def() {
                        live.remove(&d);
                    }
                    for u in instr.local_uses() {
                        live.insert(u);
                    }
                }
                if out != live_out[bi] {
                    live_out[bi] = out;
                    changed = true;
                }
                if live != live_in[bi] {
                    live_in[bi] = live;
                    changed = true;
                }
            }
        }
        RefLiveness { live_in, live_out }
    }
}

fn assert_same_liveness(f: &Function, flat: &Liveness, reference: &RefLiveness) {
    for b in f.block_ids() {
        let flat_in: Vec<Var> = flat.live_in(b).iter().collect();
        let ref_in: Vec<Var> = reference.live_in[b.index()].iter().copied().collect();
        assert_eq!(flat_in, ref_in, "live-in of {b:?} diverged");
        let flat_out: Vec<Var> = flat.live_out(b).iter().collect();
        let ref_out: Vec<Var> = reference.live_out[b.index()].iter().copied().collect();
        assert_eq!(flat_out, ref_out, "live-out of {b:?} diverged");
    }
}

// ---------------------------------------------------------------------------
// Reference interference: the old per-block backward walk, verbatim.
// ---------------------------------------------------------------------------

type EdgeSet = BTreeSet<(Var, Var)>;
type AffinityMap = BTreeMap<(Var, Var), u64>;

/// The old interference construction over owned instruction vectors: φ
/// results pairwise and against live-in, definition edges against the
/// live-after set of a backward walk (with Chaitin's copy exception), and
/// weight-summed affinity dedup on unordered pairs.
fn reference_interference(
    f: &Function,
    owned: &OwnedBlocks,
    live: &RefLiveness,
    kind: InterferenceKind,
) -> (EdgeSet, AffinityMap) {
    let mut edges = EdgeSet::new();
    let add = |a: Var, b: Var, edges: &mut EdgeSet| {
        if a != b {
            edges.insert(if a < b { (a, b) } else { (b, a) });
        }
    };
    let mut affinities = AffinityMap::new();
    let affine = |a: Var, b: Var, w: u64, map: &mut AffinityMap| {
        let key = if a <= b { (a, b) } else { (b, a) };
        *map.entry(key).or_insert(0) += w;
    };
    for b in f.block_ids() {
        let weight = 10u64.saturating_pow(f.loop_depth(b));
        let instrs = owned.block(b);

        let phi_defs: Vec<Var> = instrs
            .iter()
            .filter(|i| i.is_phi())
            .filter_map(|i| i.def())
            .collect();
        for (i, &p) in phi_defs.iter().enumerate() {
            for &q in &phi_defs[i + 1..] {
                add(p, q, &mut edges);
            }
            for &v in &live.live_in[b.index()] {
                if v != p {
                    add(p, v, &mut edges);
                }
            }
        }

        // Backward per-point walk: at the top of each loop iteration
        // `cursor` is exactly the set live after instruction `i`.
        let mut cursor: BTreeSet<Var> = live.live_out[b.index()].clone();
        for v in f.terminator(b).uses() {
            cursor.insert(v);
        }
        for instr in instrs.iter().rev() {
            if let Some(d) = instr.def() {
                for &v in &cursor {
                    if v == d {
                        continue;
                    }
                    if kind == InterferenceKind::Chaitin {
                        if let Instr::Copy { src, .. } = instr {
                            if v == *src {
                                continue;
                            }
                        }
                    }
                    add(d, v, &mut edges);
                }
                cursor.remove(&d);
            }
            for u in instr.local_uses() {
                cursor.insert(u);
            }
        }

        for instr in instrs {
            match instr {
                Instr::Copy { dst, src } if dst != src => {
                    affine(*dst, *src, weight, &mut affinities);
                }
                Instr::Phi { dst, args } => {
                    for &(pred, value) in args {
                        if value != *dst {
                            let w = 10u64.saturating_pow(f.loop_depth(pred));
                            affine(*dst, value, w, &mut affinities);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    (edges, affinities)
}

fn flat_edges(ig: &InterferenceGraph) -> EdgeSet {
    ig.graph
        .edges()
        .map(|(u, v)| {
            let (a, b) = (Var::new(u.index()), Var::new(v.index()));
            if a < b {
                (a, b)
            } else {
                (b, a)
            }
        })
        .collect()
}

fn flat_affinities(ig: &InterferenceGraph) -> AffinityMap {
    ig.affinities
        .iter()
        .map(|a| {
            let key = if a.a <= a.b { (a.a, a.b) } else { (a.b, a.a) };
            (key, a.weight)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Reference spill costs and the from-scratch reference spiller.
// ---------------------------------------------------------------------------

/// The old spill-cost computation over owned instruction vectors: a store
/// at the definition plus a reload per use at `10^loop_depth` (φ arguments
/// at the predecessor's depth).
fn reference_spill_costs(f: &Function, owned: &OwnedBlocks) -> Vec<u64> {
    let mut cost = vec![0u64; f.num_vars()];
    for b in f.block_ids() {
        let weight = 10u64.saturating_pow(f.loop_depth(b));
        for instr in owned.block(b) {
            if let Some(d) = instr.def() {
                cost[d.index()] = cost[d.index()].saturating_add(weight);
            }
            match instr {
                Instr::Phi { args, .. } => {
                    for &(pred, value) in args {
                        let w = 10u64.saturating_pow(f.loop_depth(pred));
                        cost[value.index()] = cost[value.index()].saturating_add(w);
                    }
                }
                _ => {
                    for u in instr.local_uses() {
                        cost[u.index()] = cost[u.index()].saturating_add(weight);
                    }
                }
            }
        }
        for u in f.terminator(b).uses() {
            cost[u.index()] = cost[u.index()].saturating_add(weight);
        }
    }
    cost
}

/// Per-block candidate statistics computed from scratch over the owned
/// layout — the quantities `spill_to_pressure` keeps incrementally.
#[derive(Default)]
struct RefBlockStats {
    contributions: Vec<(Var, u64)>,
    candidates: Vec<Var>,
    maxlive: usize,
}

fn ref_block_stats(
    f: &Function,
    owned: &OwnedBlocks,
    live: &RefLiveness,
    b: BlockId,
    k: usize,
) -> RefBlockStats {
    let instrs = owned.block(b);
    let n = instrs.len();
    let mut stats = RefBlockStats::default();
    let mut birth: BTreeMap<Var, u32> = BTreeMap::new();
    let mut cursor: BTreeSet<Var> = live.live_out[b.index()].clone();
    for u in f.terminator(b).uses() {
        cursor.insert(u);
    }
    for &v in &cursor {
        birth.insert(v, n as u32);
    }
    stats.maxlive = cursor.len();
    let mut min_over = if cursor.len() > k { n as u32 } else { u32::MAX };
    for (i, instr) in instrs.iter().enumerate().rev() {
        if let Some(d) = instr.def() {
            if !instr.is_phi() {
                stats.maxlive = stats
                    .maxlive
                    .max(cursor.len() + usize::from(!cursor.contains(&d)));
            }
            if cursor.remove(&d) {
                let first = birth[&d];
                stats.contributions.push((d, u64::from(first) - i as u64));
                if min_over <= first {
                    stats.candidates.push(d);
                }
            }
        }
        for u in instr.local_uses() {
            if cursor.insert(u) {
                birth.insert(u, i as u32);
            }
        }
        stats.maxlive = stats.maxlive.max(cursor.len());
        if cursor.len() > k {
            min_over = i as u32;
        }
    }
    for &v in &cursor {
        let first = birth[&v];
        stats.contributions.push((v, u64::from(first) + 1));
        if min_over <= first {
            stats.candidates.push(v);
        }
    }
    let phi_defs = instrs.iter().filter(|i| i.is_phi()).count();
    if phi_defs > 0 {
        stats.maxlive = stats.maxlive.max(live.live_in[b.index()].len() + phi_defs);
    }
    stats
}

/// The seed's spiller structure: full liveness fixpoint and whole-function
/// candidate statistics recomputed from scratch before every victim, over
/// the owned layout.  The victim comparator and the not-spillable rules
/// are the ones `spill_to_pressure` uses, so the selected sequence must be
/// identical; only the mutation primitive (`spill_everywhere`) is shared.
fn reference_spill_to_pressure(f: &mut Function, k: usize) -> SpillResult {
    let mut result = SpillResult::default();
    let mut not_spillable: BTreeSet<Var> = BTreeSet::new();
    let spill_cost = reference_spill_costs(f, &OwnedBlocks::of(f));
    loop {
        let owned = OwnedBlocks::of(f);
        let live = RefLiveness::compute(f, &owned);
        let mut occurrences = vec![0u64; f.num_vars()];
        let mut candidates: BTreeSet<Var> = BTreeSet::new();
        let mut maxlive = 0;
        for b in f.block_ids() {
            let s = ref_block_stats(f, &owned, &live, b, k);
            for &(v, c) in &s.contributions {
                occurrences[v.index()] += c;
            }
            candidates.extend(&s.candidates);
            maxlive = maxlive.max(s.maxlive);
        }
        if maxlive <= k {
            break;
        }
        let candidate = candidates
            .iter()
            .copied()
            .filter(|v| !not_spillable.contains(v))
            .min_by(|&a, &b| {
                let (ca, cb) = (spill_cost[a.index()], spill_cost[b.index()]);
                let (oa, ob) = (occurrences[a.index()], occurrences[b.index()]);
                (u128::from(ca) * u128::from(ob))
                    .cmp(&(u128::from(cb) * u128::from(oa)))
                    .then(ob.cmp(&oa))
                    .then(a.cmp(&b))
            });
        let Some(victim) = candidate else { break };
        if occurrences[victim.index()] <= 2 {
            not_spillable.insert(victim);
            continue;
        }
        let vars_before = f.num_vars();
        spill_everywhere(f, victim, &mut result);
        not_spillable.insert(victim);
        not_spillable.extend((vars_before..f.num_vars()).map(Var::new));
        result.spilled.push(victim);
    }
    result
}

// ---------------------------------------------------------------------------
// Reference next-use distances: per-variable Dijkstra over block exits.
// ---------------------------------------------------------------------------

/// An independent implementation of the [`NextUse`] boundary distances.
///
/// Where `NextUse::compute` iterates whole `BTreeMap`s to a min-plus
/// fixpoint, this reference treats each variable separately as a
/// shortest-path problem over block exits: the local summaries
/// (entry-visible first use, kill set) are extracted per block from the
/// owned layout, and the exit distances are settled by Dijkstra with the
/// block-crossing cost `n + 1` and the loop-exit penalty as edge weights.
/// Same conventions: ordinary use at its instruction index, terminator at
/// `n`, φ-arguments toward a successor at distance 0 past the
/// predecessor's exit.
fn reference_next_use(f: &Function, owned: &OwnedBlocks) -> NextUse {
    let nb = f.num_blocks();
    let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); nb];
    for b in f.block_ids() {
        for s in f.successors(b) {
            preds[s.index()].push(b);
        }
    }
    // Local summaries: first entry-visible use position per variable (φ
    // results are defined at the entry, so a definition anywhere hides all
    // later local uses), and the set of variables the block (re)defines.
    let mut local_first: Vec<BTreeMap<Var, u64>> = vec![BTreeMap::new(); nb];
    let mut killed: Vec<BTreeSet<Var>> = vec![BTreeSet::new(); nb];
    for b in f.block_ids() {
        let instrs = owned.block(b);
        for (i, instr) in instrs.iter().enumerate() {
            for u in instr.local_uses() {
                if !killed[b.index()].contains(&u) {
                    local_first[b.index()].entry(u).or_insert(i as u64);
                }
            }
            if let Some(d) = instr.def() {
                killed[b.index()].insert(d);
            }
        }
        for u in f.terminator(b).uses() {
            if !killed[b.index()].contains(&u) {
                local_first[b.index()]
                    .entry(u)
                    .or_insert(instrs.len() as u64);
            }
        }
    }
    // φ-arguments per CFG edge: a use at distance 0 past the predecessor's
    // exit.
    let mut edge_phi: BTreeMap<(usize, usize), BTreeSet<Var>> = BTreeMap::new();
    for s in f.block_ids() {
        for instr in owned.block(s).iter().filter(|i| i.is_phi()) {
            if let Instr::Phi { args, .. } = instr {
                for &(pred, value) in args {
                    edge_phi
                        .entry((pred.index(), s.index()))
                        .or_default()
                        .insert(value);
                }
            }
        }
    }
    let penalty = |b: BlockId, s: BlockId| -> u64 {
        if f.loop_depth(s) < f.loop_depth(b) {
            LOOP_EXIT_DISTANCE
        } else {
            0
        }
    };

    let mut exit: Vec<BTreeMap<Var, u64>> = vec![BTreeMap::new(); nb];
    for vi in 0..f.num_vars() {
        let v = Var::new(vi);
        let mut dist: Vec<u64> = vec![u64::MAX; nb];
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        // Multi-source initialization: uses visible without crossing a
        // whole successor (φ-arguments on the edge, entry-visible local
        // uses of the successor).
        for b in f.block_ids() {
            let mut best = u64::MAX;
            for s in f.successors(b) {
                let p = penalty(b, s);
                if edge_phi
                    .get(&(b.index(), s.index()))
                    .is_some_and(|set| set.contains(&v))
                {
                    best = best.min(p);
                }
                if let Some(&d) = local_first[s.index()].get(&v) {
                    best = best.min(p.saturating_add(d));
                }
            }
            if best < u64::MAX {
                dist[b.index()] = best;
                heap.push(Reverse((best, b.index())));
            }
        }
        // Settle: crossing block `b` costs `n_b + 1` plus the edge penalty
        // into it, and is only possible where `b` does not redefine `v`.
        while let Some(Reverse((d, bi))) = heap.pop() {
            if d > dist[bi] {
                continue;
            }
            if killed[bi].contains(&v) {
                continue;
            }
            let through = (owned.block(BlockId::new(bi)).len() as u64 + 1).saturating_add(d);
            for &p in &preds[bi] {
                let cand = penalty(p, BlockId::new(bi)).saturating_add(through);
                if cand < dist[p.index()] {
                    dist[p.index()] = cand;
                    heap.push(Reverse((cand, p.index())));
                }
            }
        }
        for (bi, &d) in dist.iter().enumerate() {
            if d != u64::MAX {
                exit[bi].insert(v, d);
            }
        }
    }

    let mut entry: Vec<BTreeMap<Var, u64>> = vec![BTreeMap::new(); nb];
    for bi in 0..nb {
        entry[bi] = local_first[bi].clone();
        let n = owned.block(BlockId::new(bi)).len() as u64;
        for (&v, &d) in &exit[bi] {
            if killed[bi].contains(&v) {
                continue;
            }
            let through = (n + 1).saturating_add(d);
            let e = entry[bi].entry(v).or_insert(u64::MAX);
            if through < *e {
                *e = through;
            }
        }
    }
    NextUse { entry, exit }
}

// ---------------------------------------------------------------------------
// Workloads: the graph_backend CFG mix plus module-drawn functions.
// ---------------------------------------------------------------------------

fn workload_functions() -> Vec<Function> {
    let mut out = Vec::new();
    for (i, profile) in ShapeProfile::ALL.into_iter().enumerate() {
        let params = profile.params(PressureLevel::Low.pressure());
        out.push(generate(&params, &mut coalesce_gen::rng(7 + i as u64)));
    }
    let params = ShapeProfile::FpLoopNest.params(PressureLevel::Medium.pressure());
    out.push(generate(&params, &mut coalesce_gen::rng(23)));
    out
}

fn module_functions(seed: u64) -> Vec<Function> {
    module_specs(&ModuleParams { functions: 6 }, seed)
        .iter()
        .map(|s| s.generate())
        .collect()
}

// ---------------------------------------------------------------------------
// The equivalence tests.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Flat-arena liveness equals the owned-layout BTreeSet reference on
    /// module-drawn functions of every profile/pressure/size mix.
    #[test]
    fn flat_liveness_matches_the_owned_layout_reference(seed in 0u64..48) {
        for f in module_functions(seed) {
            let owned = OwnedBlocks::of(&f);
            let flat = Liveness::compute(&f);
            let reference = RefLiveness::compute(&f, &owned);
            assert_same_liveness(&f, &flat, &reference);
        }
    }

    /// Flat-arena interference equals the owned-layout reference — same
    /// edge set and the same weight-summed affinities — under both
    /// interference definitions.
    #[test]
    fn flat_interference_matches_the_owned_layout_reference(seed in 0u64..32) {
        for f in module_functions(seed * 31 + 1) {
            let owned = OwnedBlocks::of(&f);
            let live = Liveness::compute(&f);
            let reference = RefLiveness::compute(&f, &owned);
            for kind in [InterferenceKind::Intersection, InterferenceKind::Chaitin] {
                let ig = InterferenceGraph::build_with(
                    &f,
                    &live,
                    BuildOptions { kind, ..Default::default() },
                );
                let (ref_edges, ref_affinities) =
                    reference_interference(&f, &owned, &reference, kind);
                prop_assert_eq!(flat_edges(&ig), ref_edges, "{:?} edges", kind);
                prop_assert_eq!(flat_affinities(&ig), ref_affinities, "{:?} affinities", kind);
            }
        }
    }

    /// Flat-arena spill costs equal the owned-layout reference.
    #[test]
    fn flat_spill_costs_match_the_owned_layout_reference(seed in 0u64..48) {
        for f in module_functions(seed * 17 + 3) {
            let owned = OwnedBlocks::of(&f);
            prop_assert_eq!(spill::spill_costs(&f), reference_spill_costs(&f, &owned));
        }
    }

    /// The Belady pass's min-plus fixpoint boundary distances equal the
    /// per-variable Dijkstra reference on module-drawn functions.
    #[test]
    fn next_use_fixpoint_matches_the_dijkstra_reference(seed in 0u64..32) {
        for f in module_functions(seed * 13 + 11) {
            let owned = OwnedBlocks::of(&f);
            let fixpoint = NextUse::compute(&f);
            let reference = reference_next_use(&f, &owned);
            for b in f.block_ids() {
                prop_assert_eq!(
                    &fixpoint.entry[b.index()],
                    &reference.entry[b.index()],
                    "entry map of {:?} diverged", b
                );
                prop_assert_eq!(
                    &fixpoint.exit[b.index()],
                    &reference.exit[b.index()],
                    "exit map of {:?} diverged", b
                );
            }
        }
    }

    /// Every spiller in the zoo upholds the common pressure contract on
    /// module-drawn functions: a valid rewrite whose precise `Maxlive` is
    /// at most `max(k + 1, the strategy's own floor)`, where the floor is
    /// the strategy's result at `k = 0` — the pressure that survives
    /// spilling *everything spillable* through that strategy's own rewrite
    /// (one instruction's operands, or a block entry's simultaneously-live
    /// φ-results, can alone exceed `k`; Belady's one-reload-per-block
    /// splitting keeps a temporary alive between a block's first and last
    /// served use of a victim; and the greedy spiller's reload temporaries
    /// are themselves unspillable — no run of the same strategy can go
    /// below what its own rewrite leaves behind).  The `+ 1` concedes the
    /// slot a spilled value's store still occupies at its single
    /// definition point under the *precise* metric, which charges dead
    /// definitions too (see `spill_belady`).  The spilled set and reload
    /// count of each strategy must also be reproducible.
    #[test]
    fn every_spiller_meets_the_pressure_target_up_to_the_floor(seed in 0u64..24) {
        for f in module_functions(seed * 29 + 5) {
            let maxlive = Liveness::compute(&f).maxlive_precise(&f);
            let k = (maxlive / 2).max(3);
            for spiller in SpillerKind::ALL {
                let mut floor_f = f.clone();
                let _ = spiller.run(&mut floor_f, 0);
                let floor = Liveness::compute(&floor_f).maxlive_precise(&floor_f);
                let mut g = f.clone();
                let result = spiller.run(&mut g, k);
                prop_assert!(g.validate().is_ok(), "{} broke the function", spiller.name());
                let after = Liveness::compute(&g).maxlive_precise(&g);
                prop_assert!(
                    after <= (k + 1).max(floor),
                    "{}: Maxlive {} above max(k + 1 = {}, floor = {})",
                    spiller.name(), after, k + 1, floor
                );
                let mut g2 = f.clone();
                let result2 = spiller.run(&mut g2, k);
                prop_assert_eq!(
                    result.spilled, result2.spilled,
                    "{} victim sequence not reproducible", spiller.name()
                );
                prop_assert_eq!(result.reloads, result2.reloads);
            }
        }
    }
}

/// The incremental spiller picks the same victims in the same order (and
/// inserts the same number of reloads) as the from-scratch reference
/// spiller over the owned layout, on every workload profile.
#[test]
fn incremental_spiller_matches_the_from_scratch_reference_victim_sequence() {
    for (i, f) in workload_functions().into_iter().enumerate() {
        let maxlive = Liveness::compute(&f).maxlive_precise(&f);
        let k = (maxlive / 2).max(3);
        let mut flat_f = f.clone();
        let flat = spill::spill_to_pressure(&mut flat_f, k);
        let mut ref_f = f.clone();
        let reference = reference_spill_to_pressure(&mut ref_f, k);
        assert_eq!(
            flat.spilled, reference.spilled,
            "workload {i}: victim sequence diverged at k = {k}"
        );
        assert_eq!(flat.reloads, reference.reloads, "workload {i}");
        assert!(
            !flat.spilled.is_empty(),
            "workload {i}: no spill pressure at k = {k}"
        );
        // Both rewrites leave valid functions with the same final Maxlive.
        assert!(flat_f.validate().is_ok() && ref_f.validate().is_ok());
        assert_eq!(
            Liveness::compute(&flat_f).maxlive_precise(&flat_f),
            Liveness::compute(&ref_f).maxlive_precise(&ref_f),
            "workload {i}"
        );
    }
}

/// Spot-check on module-drawn small functions too: the spiller equivalence
/// holds across the generator's profile/pressure/size mix.
#[test]
fn incremental_spiller_matches_the_reference_on_module_functions() {
    for f in module_functions(5) {
        let maxlive = Liveness::compute(&f).maxlive_precise(&f);
        let k = (maxlive / 2).max(3);
        let mut flat_f = f.clone();
        let flat = spill::spill_to_pressure(&mut flat_f, k);
        let mut ref_f = f.clone();
        let reference = reference_spill_to_pressure(&mut ref_f, k);
        assert_eq!(flat.spilled, reference.spilled);
        assert_eq!(flat.reloads, reference.reloads);
    }
}
