//! Byte-level fuzz over every surface that ingests untrusted text: the
//! DIMACS and challenge parsers in `coalesce_graph::format` and the
//! serving protocol's JSONL request parser in `coalesce_serve`.
//!
//! The contract under test is **errors, never panics**: arbitrary byte
//! soup and byte-mutated valid inputs must come back as `Ok` or a
//! structured error.  A panic anywhere in a parser would take a serving
//! worker down with the request, so this suite is the offline twin of the
//! E18 chaos soak's fault injection.

use coalesce_graph::format::{
    from_challenge, from_challenge_limited, from_dimacs, from_dimacs_limited, ParseLimits,
};
use coalesce_serve::parse_request;
use proptest::prelude::*;

/// A small, definitely-valid DIMACS instance to mutate from.
const DIMACS_BASE: &str =
    "c fuzz base\np edge 6 7\ne 1 2\ne 2 3\ne 3 4\ne 4 5\ne 5 6\ne 1 6\ne 2 5\n";

/// A small, definitely-valid challenge instance to mutate from.
const CHALLENGE_BASE: &str =
    "p coalesce 6 5 2\nk 3\ne 1 2\ne 2 3\ne 3 4\ne 4 5\ne 5 6\na 1 3 10\na 2 4 5\n";

/// Valid JSONL request lines (one per request kind) to mutate from.
const REQUEST_BASES: &[&str] = &[
    "{\"id\":1,\"kind\":\"dimacs\",\"text\":\"p edge 3 2\\ne 1 2\\ne 2 3\",\"k\":2}",
    "{\"id\":2,\"kind\":\"challenge\",\"text\":\"p coalesce 3 2 1\\nk 2\\ne 1 2\\ne 2 3\\na 1 3 7\"}",
    "{\"id\":3,\"kind\":\"cfg\",\"profile\":\"int-branchy\",\"pressure\":\"medium\",\"seed\":7}",
    "{\"id\":4,\"kind\":\"module_slice\",\"seed\":40,\"start\":0,\"count\":2}",
];

/// Applies a scripted sequence of byte mutations — overwrite, insert,
/// delete, truncate — and re-decodes lossily, so the result is arbitrary
/// (possibly invalid-structure) UTF-8 text near the valid base.
fn mutate(base: &str, ops: &[(u8, usize, u8)]) -> String {
    let mut bytes = base.as_bytes().to_vec();
    for &(op, pos, byte) in ops {
        if bytes.is_empty() {
            break;
        }
        let pos = pos % bytes.len();
        match op % 4 {
            0 => bytes[pos] = byte,
            1 => bytes.insert(pos, byte),
            2 => {
                bytes.remove(pos);
            }
            _ => bytes.truncate(pos.max(1)),
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Strategy: a short mutation script.
fn mutation_ops() -> impl Strategy<Value = Vec<(u8, usize, u8)>> {
    proptest::collection::vec((any::<u8>(), any::<usize>(), any::<u8>()), 1..8)
}

/// Strategy: raw byte soup, decoded lossily.
fn byte_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..256)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// The strict limits a server facing untrusted input would use; small
/// enough that mutated headers routinely trip them.
fn strict_limits() -> ParseLimits {
    ParseLimits {
        max_vertices: 1_000,
        max_edges: 10_000,
        max_affinities: 1_000,
    }
}

/// Sanity: the mutation bases themselves parse, so every fuzz case below
/// really starts one byte-edit away from a valid input.
#[test]
fn the_fuzz_bases_are_valid() {
    let g = from_dimacs(DIMACS_BASE).expect("DIMACS base must parse");
    assert_eq!(g.num_vertices(), 6);
    let file = from_challenge(CHALLENGE_BASE).expect("challenge base must parse");
    assert_eq!(file.registers, Some(3));
    assert_eq!(file.affinities.len(), 2);
    for line in REQUEST_BASES {
        parse_request(line).expect("request base must parse");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary byte soup through every parser: any outcome but a panic.
    #[test]
    fn byte_soup_never_panics_any_parser(text in byte_soup()) {
        let _ = from_dimacs(&text);
        let _ = from_challenge(&text);
        let _ = parse_request(&text);
    }

    /// Byte-mutated DIMACS near a valid instance: `Ok` or error, never a
    /// panic — and anything accepted under strict limits respects them.
    #[test]
    fn mutated_dimacs_errors_but_never_panics(ops in mutation_ops()) {
        let text = mutate(DIMACS_BASE, &ops);
        let _ = from_dimacs(&text);
        if let Ok(g) = from_dimacs_limited(&text, &strict_limits()) {
            prop_assert!(g.num_vertices() <= 1_000);
            prop_assert!(g.num_edges() <= 10_000);
        }
    }

    /// Byte-mutated challenge text: same contract, plus the declared
    /// affinity cap.
    #[test]
    fn mutated_challenge_errors_but_never_panics(ops in mutation_ops()) {
        let text = mutate(CHALLENGE_BASE, &ops);
        let _ = from_challenge(&text);
        if let Ok(file) = from_challenge_limited(&text, &strict_limits()) {
            prop_assert!(file.graph.num_vertices() <= 1_000);
            prop_assert!(file.affinities.len() <= 1_000);
        }
    }

    /// Byte-mutated JSONL request lines (every request kind): the protocol
    /// parser must return a request or a structured error, never panic.
    #[test]
    fn mutated_requests_error_but_never_panic(
        which in 0usize..REQUEST_BASES.len(),
        ops in mutation_ops(),
    ) {
        let text = mutate(REQUEST_BASES[which], &ops);
        let _ = parse_request(&text);
    }

    /// Deep `[`/`{` nesting inside a request line must hit the JSON depth
    /// cap as an error, not blow the stack.
    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow(depth in 1usize..4_096) {
        let line = format!(
            "{{\"id\":1,\"kind\":\"dimacs\",\"text\":{}{}",
            "[".repeat(depth),
            "]".repeat(depth),
        );
        prop_assert!(parse_request(&line).is_err());
    }
}
