//! Property-based tests (proptest) over the core data structures and the
//! paper's structural invariants.

use coalesce_core::affinity::{Affinity, AffinityGraph};
use coalesce_core::conservative::{conservative_coalesce, ConservativeRule};
use coalesce_core::incremental::{chordal_incremental, incremental_exact};
use coalesce_graph::{chordal, coloring, greedy, Graph, VertexId};
use proptest::prelude::*;

/// Strategy: a random undirected graph on `n ≤ 9` vertices given as an edge
/// bitmask over the C(9, 2) = 36 possible edges.
fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (2usize..9, proptest::collection::vec(any::<bool>(), 36)).prop_map(|(n, mask)| {
        let mut g = Graph::new(n);
        let mut idx = 0;
        for i in 0..n {
            for j in i + 1..n {
                if mask[idx % mask.len()] {
                    g.add_edge(VertexId::new(i), VertexId::new(j));
                }
                idx += 1;
            }
        }
        g
    })
}

/// Strategy: a random interval graph (always chordal).
fn arbitrary_interval_graph() -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0usize..12, 1usize..5), 2..10).prop_map(|intervals| {
        let n = intervals.len();
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                let (a1, l1) = intervals[i];
                let (a2, l2) = intervals[j];
                let (b1, b2) = (a1 + l1, a2 + l2);
                if a1.max(a2) <= b1.min(b2) {
                    g.add_edge(VertexId::new(i), VertexId::new(j));
                }
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The coloring number bounds the chromatic number, and the greedy
    /// elimination scheme succeeds exactly at col(G).
    #[test]
    fn coloring_number_is_consistent(g in arbitrary_graph()) {
        let col = greedy::coloring_number(&g);
        prop_assert!(greedy::is_greedy_k_colorable(&g, col));
        if col > 0 {
            prop_assert!(!greedy::is_greedy_k_colorable(&g, col - 1));
        }
        let coloring = greedy::greedy_coloring(&g, col).unwrap();
        prop_assert!(coloring.is_proper(&g));
        prop_assert!(coloring.max_color_bound() <= col);
    }

    /// DSATUR and exact coloring agree with basic bounds on random graphs.
    #[test]
    fn coloring_bounds_hold(g in arbitrary_graph()) {
        let dsatur = coloring::dsatur(&g);
        prop_assert!(dsatur.is_proper(&g));
        let chromatic = coloring::chromatic_number(&g);
        prop_assert!(chromatic <= dsatur.num_colors());
        prop_assert!(chromatic <= greedy::coloring_number(&g).max(1) || g.num_vertices() == 0);
        prop_assert!(coalesce_graph::cliques::clique_number(&g) <= chromatic || g.num_vertices() == 0);
    }

    /// Property 1: a k-colorable chordal graph is greedy-k-colorable, and
    /// the chordal coloring is optimal.
    #[test]
    fn property_1_on_random_chordal_graphs(g in arbitrary_interval_graph()) {
        prop_assert!(chordal::is_chordal(&g));
        let omega = chordal::chordal_clique_number(&g).unwrap();
        prop_assert!(greedy::is_greedy_k_colorable(&g, omega));
        let coloring = chordal::chordal_coloring(&g).unwrap();
        prop_assert!(coloring.is_proper(&g));
        prop_assert_eq!(coloring.num_colors(), omega);
    }

    /// Theorem 5's polynomial algorithm agrees with the exact solver on
    /// chordal graphs, for k = omega and k = omega + 1.
    #[test]
    fn chordal_incremental_matches_exact(g in arbitrary_interval_graph()) {
        let omega = chordal::chordal_clique_number(&g).unwrap();
        let verts: Vec<VertexId> = g.vertices().collect();
        for (i, &a) in verts.iter().enumerate() {
            for &b in verts.iter().skip(i + 1).take(3) {
                if g.has_edge(a, b) { continue; }
                for k in [omega, omega + 1] {
                    let fast = chordal_incremental(&g, k, a, b).unwrap().is_coalescible();
                    let slow = incremental_exact(&g, k, a, b).is_coalescible();
                    prop_assert_eq!(fast, slow, "pair ({}, {}), k = {}", a, b, k);
                }
            }
        }
    }

    /// Conservative coalescing never produces interfering classes and never
    /// breaks greedy-k-colorability of a greedy-k-colorable input.
    #[test]
    fn conservative_is_safe(g in arbitrary_graph(), k in 2usize..5) {
        prop_assume!(greedy::is_greedy_k_colorable(&g, k));
        // Affinities between the first few non-adjacent pairs.
        let verts: Vec<VertexId> = g.vertices().collect();
        let mut affs = Vec::new();
        'outer: for (i, &a) in verts.iter().enumerate() {
            for &b in &verts[i + 1..] {
                if !g.has_edge(a, b) {
                    affs.push(Affinity::new(a, b));
                    if affs.len() >= 5 { break 'outer; }
                }
            }
        }
        let ag = AffinityGraph::new(g.clone(), affs);
        for rule in [ConservativeRule::Briggs, ConservativeRule::George, ConservativeRule::BruteForce] {
            let mut res = conservative_coalesce(&ag, k, rule);
            prop_assert!(greedy::is_greedy_k_colorable(&res.coalescing.merged_graph, k));
            for class in res.coalescing.classes() {
                let members: Vec<VertexId> = class.into_iter().collect();
                for (i, &x) in members.iter().enumerate() {
                    for &y in &members[i + 1..] {
                        prop_assert!(!g.has_edge(x, y));
                    }
                }
            }
        }
    }

    /// Merging vertices never increases the vertex count and preserves the
    /// number of live vertices by exactly one per merge.
    #[test]
    fn merge_bookkeeping(g in arbitrary_graph()) {
        let verts: Vec<VertexId> = g.vertices().collect();
        prop_assume!(verts.len() >= 2);
        let (a, b) = (verts[0], verts[1]);
        prop_assume!(!g.has_edge(a, b));
        let mut merged = g.clone();
        merged.merge(a, b);
        prop_assert_eq!(merged.num_vertices(), g.num_vertices() - 1);
        prop_assert!(merged.num_edges() <= g.num_edges());
        // Every former neighbor of b is now a neighbor of a.
        for n in g.neighbors(b) {
            prop_assert!(merged.has_edge(a, n));
        }
    }
}
