//! Integration tests validating the NP-completeness reductions on random
//! small instances: the optimum of the source problem always equals the
//! optimum of the produced coalescing instance.

use coalesce_core::aggressive::aggressive_exact;
use coalesce_core::incremental::incremental_exact;
use coalesce_core::optimistic::decoalesce_exact;
use coalesce_gen::graphs::random_graph;
use coalesce_graph::{Graph, VertexId};
use coalesce_reduce::{colorability, multiway_cut, sat, vertex_cover};
use rand::Rng;

fn v(i: usize) -> VertexId {
    VertexId::new(i)
}

#[test]
fn multiway_cut_equals_optimal_aggressive_coalescing_on_random_graphs() {
    for seed in 0..5 {
        let mut rng = coalesce_gen::rng(seed);
        let g = random_graph(6, 0.45, &mut rng);
        let instance = multiway_cut::MultiwayCutInstance::new(g, vec![v(0), v(1), v(2)]);
        let cut = instance.minimum_cut();
        let reduction = multiway_cut::reduce_to_aggressive(&instance);
        let result = aggressive_exact(&reduction.instance);
        assert_eq!(result.stats.uncoalesced(), cut, "seed {seed}");
    }
}

#[test]
fn conservative_zero_budget_equals_colorability_on_random_graphs() {
    for seed in 0..8 {
        let mut rng = coalesce_gen::rng(100 + seed);
        let g = random_graph(6, 0.5, &mut rng);
        let reduction = colorability::reduce_to_conservative(&g);
        for k in [2, 3] {
            let exact =
                coalesce_core::conservative::conservative_exact(&reduction.instance, k, false);
            assert_eq!(
                exact.stats.uncoalesced() == 0,
                colorability::is_k_colorable(&g, k),
                "seed {seed} k {k}"
            );
        }
    }
}

#[test]
fn incremental_coalescibility_equals_satisfiability_on_random_3sat() {
    for seed in 0..5u64 {
        let mut rng = coalesce_gen::rng(200 + seed);
        let num_vars = 3;
        let num_clauses = 6; // around the 3SAT phase transition for 3 vars
        let clauses: Vec<Vec<sat::Literal>> = (0..num_clauses)
            .map(|_| {
                (0..3)
                    .map(|_| {
                        let var = rng.gen_range(0..num_vars);
                        if rng.gen_bool(0.5) {
                            sat::Literal::pos(var)
                        } else {
                            sat::Literal::neg(var)
                        }
                    })
                    .collect()
            })
            .collect();
        let formula = sat::Cnf::new(num_vars, clauses);
        let reduction = sat::reduce_3sat_to_incremental(&formula);
        let answer = incremental_exact(&reduction.graph, 3, reduction.x, reduction.y);
        assert_eq!(
            answer.is_coalescible(),
            formula.is_satisfiable(),
            "seed {seed}"
        );
    }
}

#[test]
fn minimum_decoalescing_equals_minimum_vertex_cover_on_small_graphs() {
    // A handful of fixed max-degree-3 graphs plus random sparse ones.
    let mut cases: Vec<Graph> = vec![
        Graph::with_edges(4, [(v(0), v(1)), (v(1), v(2)), (v(2), v(3))]),
        Graph::with_edges(5, [(v(0), v(1)), (v(1), v(2)), (v(3), v(4))]),
        Graph::with_edges(4, (0..4).map(|i| (v(i), v((i + 1) % 4)))),
    ];
    for seed in 0..3 {
        let mut rng = coalesce_gen::rng(300 + seed);
        loop {
            let g = random_graph(5, 0.3, &mut rng);
            if g.max_degree() <= 3 {
                cases.push(g);
                break;
            }
        }
    }
    for (i, g) in cases.into_iter().enumerate() {
        let instance = vertex_cover::VertexCoverInstance::new(g);
        let cover = instance.minimum_cover();
        let reduction = vertex_cover::reduce_to_optimistic(&instance);
        let (decoalesced, _) = decoalesce_exact(&reduction.instance, reduction.k)
            .expect("reduction graphs are greedy-4-colorable");
        assert_eq!(decoalesced, cover, "case {i}");
    }
}

#[test]
fn sat_graph_chromatic_structure_matches_figure_4() {
    // The base triangle forces three distinct colors; literal vertices are
    // never colored like R.
    let formula = sat::Cnf::new(2, vec![vec![sat::Literal::pos(0), sat::Literal::neg(1)]]);
    let built = sat::formula_to_graph(&formula);
    let coloring = coalesce_graph::coloring::exact_k_coloring(&built.graph, 3, &[]).unwrap();
    let r_color = coloring.color_of(built.r_vertex);
    for var in 0..2 {
        assert_ne!(coloring.color_of(built.positive[var]), r_color);
        assert_ne!(coloring.color_of(built.negative[var]), r_color);
        assert_ne!(
            coloring.color_of(built.positive[var]),
            coloring.color_of(built.negative[var])
        );
    }
}
