//! The graceful-degradation ladder of the allocation service, tested
//! end-to-end through the public engine API: every rung is reachable by
//! budget alone, rung selection is deterministic (budgets are charged
//! against *structural* cost estimates, never wall clock), shrinking the
//! budget never climbs the ladder, and the answer from every rung still
//! passes re-verification.

use coalesce_serve::{parse_request, Engine, EngineConfig, Response, Rung};
use coalesce_stats::json::Json;
use coalesce_verify::VerifyLevel;
use std::time::Instant;

fn verifying_engine() -> Engine {
    Engine::new(EngineConfig {
        verify: VerifyLevel::Boundaries,
        ..EngineConfig::default()
    })
}

fn run(engine: &Engine, line: &str) -> Response {
    let req = parse_request(line).expect("test request parses");
    engine.execute(&req, Instant::now())
}

fn ok_fields(resp: &Response) -> (Rung, bool, Option<&'static str>) {
    match resp {
        Response::Ok {
            rung,
            degraded,
            degrade_reason,
            ..
        } => (*rung, *degraded, *degrade_reason),
        other => panic!("expected ok, got {other:?}"),
    }
}

/// Two triangles joined at a path plus a pendant edge — chordal, with
/// n = 6, m = 7, so the engine's structural estimates put the exact rung
/// at 6·7 + 6 + 1 = 49 units and the chordal rung at 6 + 7 + 1 = 14.
const DIMACS: &str = "p edge 6 7\\ne 1 2\\ne 2 3\\ne 1 3\\ne 3 4\\ne 4 5\\ne 3 5\\ne 5 6\\n";

/// A 6-vertex path with two affinities: n = 6, m = 5, a = 2, so exact
/// costs 6·5 + 2 + 1 = 33 units and chordal-IRC costs 6 + 5 + 2 + 1 = 14.
const CHALLENGE: &str =
    "p coalesce 6 5 2\\nk 3\\ne 1 2\\ne 2 3\\ne 3 4\\ne 4 5\\ne 5 6\\na 1 3 10\\na 2 4 5\\n";

fn dimacs_line(id: u64, budget: Option<u64>) -> String {
    match budget {
        Some(b) => format!(r#"{{"id":{id},"kind":"dimacs","text":"{DIMACS}","k":3,"budget":{b}}}"#),
        None => format!(r#"{{"id":{id},"kind":"dimacs","text":"{DIMACS}","k":3}}"#),
    }
}

fn challenge_line(id: u64, budget: Option<u64>) -> String {
    match budget {
        Some(b) => format!(r#"{{"id":{id},"kind":"challenge","text":"{CHALLENGE}","budget":{b}}}"#),
        None => format!(r#"{{"id":{id},"kind":"challenge","text":"{CHALLENGE}"}}"#),
    }
}

/// Every rung of the graph-coloring ladder is reachable by budget alone,
/// and each rung's answer re-verifies.
#[test]
fn every_dimacs_rung_is_reachable_and_verified() {
    let engine = verifying_engine();
    let cases = [
        (None, Rung::Exact, false),
        (Some(20), Rung::ChordalIrc, true),
        (Some(2), Rung::Greedy, true),
    ];
    for (budget, want_rung, want_degraded) in cases {
        let resp = run(&engine, &dimacs_line(1, budget));
        let (rung, degraded, reason) = ok_fields(&resp);
        assert_eq!(rung, want_rung, "budget {budget:?}");
        assert_eq!(degraded, want_degraded, "budget {budget:?}");
        if want_degraded {
            assert_eq!(reason, Some("budget"));
        }
        assert_eq!(
            resp.to_json().get("verified").and_then(Json::as_bool),
            Some(true),
            "rung {rung:?} must still produce a verifiable answer"
        );
    }
}

/// Same walk for the coalescing (challenge) ladder.
#[test]
fn every_challenge_rung_is_reachable_and_verified() {
    let engine = verifying_engine();
    let cases = [
        (None, Rung::Exact, false),
        (Some(20), Rung::ChordalIrc, true),
        (Some(3), Rung::Greedy, true),
    ];
    for (budget, want_rung, want_degraded) in cases {
        let resp = run(&engine, &challenge_line(2, budget));
        let (rung, degraded, _) = ok_fields(&resp);
        assert_eq!(rung, want_rung, "budget {budget:?}");
        assert_eq!(degraded, want_degraded, "budget {budget:?}");
        assert_eq!(
            resp.to_json().get("verified").and_then(Json::as_bool),
            Some(true),
            "rung {rung:?} must still produce a verifiable answer"
        );
    }
}

/// Shrinking the budget can only descend the ladder, never climb it, and
/// re-running any budget reproduces the identical response (selection is
/// structural, not timing-based).
#[test]
fn rung_selection_is_monotone_in_budget_and_deterministic() {
    let engine = verifying_engine();
    let mut last = Rung::Exact;
    for budget in (1..=60).rev() {
        let line = dimacs_line(3, Some(budget));
        let first = run(&engine, &line);
        let (rung, _, _) = ok_fields(&first);
        assert!(
            rung >= last,
            "budget {budget}: rung {rung:?} climbed above {last:?}"
        );
        last = rung;
        assert_eq!(run(&engine, &line), first, "budget {budget} must replay");
    }
    assert_eq!(last, Rung::Greedy, "budget 1 must land on the floor");
}

/// Graphs over the exact-rung size gate answer at the chordal rung
/// without being flagged degraded: gating by instance size is a
/// configuration fact, not a service failure.
#[test]
fn size_gated_instances_answer_ungraded_at_the_chordal_rung() {
    let engine = verifying_engine();
    let n = engine.config().exact_max_vertices + 12;
    let mut text = format!("p edge {n} {}\\n", n - 1);
    for i in 1..n {
        text.push_str(&format!("e {i} {}\\n", i + 1));
    }
    let resp = run(
        &engine,
        &format!(r#"{{"id":4,"kind":"dimacs","text":"{text}","k":2}}"#),
    );
    let (rung, degraded, reason) = ok_fields(&resp);
    assert_eq!(rung, Rung::ChordalIrc);
    assert!(!degraded, "size gating is not degradation");
    assert_eq!(reason, None);
    assert_eq!(
        resp.to_json().get("verified").and_then(Json::as_bool),
        Some(true)
    );
}

/// The ladder constant itself is ordered most-precise-first and matches
/// the `Ord` the monotonicity test leans on.
#[test]
fn the_ladder_is_ordered_most_precise_first() {
    assert_eq!(Rung::LADDER, [Rung::Exact, Rung::ChordalIrc, Rung::Greedy]);
    assert!(Rung::Exact < Rung::ChordalIrc && Rung::ChordalIrc < Rung::Greedy);
}
