//! Cross-validation of the pruned exact-coalescing engine against the
//! seed repository's brute-force semantics.
//!
//! The fast [`ExactSolver`] (component decomposition, clique seeding,
//! symmetry breaking, transposition table) must be *provably equivalent*
//! to the naive backtracker it replaced: on random small graphs every
//! configuration of the solver must return the same yes/no answer as a
//! verbatim copy of the seed's brute force, and on chordal instances the
//! polynomial Theorem 5 algorithm must agree with the exact engine.

use coalesce_core::incremental::{chordal_incremental, incremental_exact, ChordalIncremental};
use coalesce_graph::solver::{ExactSolver, SolverConfig};
use coalesce_graph::{chordal, coloring, Graph, VertexId};
use proptest::prelude::*;

/// The seed repository's exact `k`-colorability decision, kept as the
/// cross-validation oracle: plain backtracking in vertex order with the
/// trivial `max_used + 2` symmetry bound — no decomposition, no clique
/// pruning, no memoization.
fn oracle_is_k_colorable(g: &Graph, k: usize) -> bool {
    fn go(g: &Graph, k: usize, colors: &mut Vec<Option<usize>>, v: usize, max_used: usize) -> bool {
        if v == colors.len() {
            return true;
        }
        let vid = VertexId::new(v);
        for c in 0..k.min(max_used + 2) {
            if g.neighbors(vid).any(|u| colors[u.index()] == Some(c)) {
                continue;
            }
            colors[v] = Some(c);
            if go(g, k, colors, v + 1, max_used.max(c)) {
                return true;
            }
            colors[v] = None;
        }
        false
    }
    let (dense, _) = g.compact();
    let n = dense.num_vertices();
    if n == 0 {
        return true;
    }
    if k == 0 {
        return false;
    }
    go(&dense, k, &mut vec![None; n], 0, 0)
}

/// The oracle extended with one same-color constraint, by contracting the
/// pair first (exactly what the seed's `exact_k_coloring` did).
fn oracle_same_color_k_colorable(g: &Graph, k: usize, x: VertexId, y: VertexId) -> bool {
    if g.has_edge(x, y) {
        return false;
    }
    let mut merged = g.clone();
    merged.merge(x, y);
    oracle_is_k_colorable(&merged, k)
}

/// Every pruning configuration worth cross-validating, including the
/// fully-disabled one (which is the seed algorithm modulo vertex order).
fn solver_configs() -> Vec<SolverConfig> {
    vec![
        SolverConfig::default(),
        SolverConfig {
            decompose_components: false,
            ..SolverConfig::default()
        },
        SolverConfig {
            clique_seeding: false,
            ..SolverConfig::default()
        },
        SolverConfig {
            memoize: false,
            ..SolverConfig::default()
        },
        SolverConfig {
            decompose_components: false,
            clique_seeding: false,
            memoize: false,
            memo_capacity: 0,
        },
    ]
}

/// Strategy: a random undirected graph on `n ≤ 9` vertices given as an
/// edge bitmask over the C(9, 2) = 36 possible edges.
fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (2usize..9, proptest::collection::vec(any::<bool>(), 36)).prop_map(|(n, mask)| {
        let mut g = Graph::new(n);
        let mut idx = 0;
        for i in 0..n {
            for j in i + 1..n {
                if mask[idx % mask.len()] {
                    g.add_edge(VertexId::new(i), VertexId::new(j));
                }
                idx += 1;
            }
        }
        g
    })
}

/// Strategy: a random interval graph (always chordal), larger than the
/// ones the pre-solver agreement tests could afford.
fn arbitrary_interval_graph() -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0usize..16, 1usize..6), 2..14).prop_map(|intervals| {
        let n = intervals.len();
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                let (a1, l1) = intervals[i];
                let (a2, l2) = intervals[j];
                let (b1, b2) = (a1 + l1, a2 + l2);
                if a1.max(a2) <= b1.min(b2) {
                    g.add_edge(VertexId::new(i), VertexId::new(j));
                }
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Plain k-colorability: every solver configuration equals the seed
    /// brute force, and returned witnesses are proper.
    #[test]
    fn solver_matches_oracle_on_random_graphs(g in arbitrary_graph(), k in 1usize..5) {
        let expected = oracle_is_k_colorable(&g, k);
        for config in solver_configs() {
            let mut solver = ExactSolver::with_config(config);
            let witness = solver.k_coloring(&g, k, &[]);
            prop_assert_eq!(
                witness.is_some(),
                expected,
                "config {:?} on {:?} with k = {}",
                config,
                g,
                k
            );
            if let Some(c) = witness {
                prop_assert!(c.is_proper(&g));
            }
        }
    }

    /// Same-color constraints: the constrained query equals the oracle on
    /// the contracted graph, and witnesses respect the constraint.
    #[test]
    fn constrained_solver_matches_oracle(g in arbitrary_graph(), k in 1usize..4) {
        let verts: Vec<VertexId> = g.vertices().collect();
        prop_assume!(verts.len() >= 2);
        let (x, y) = (verts[0], verts[verts.len() - 1]);
        prop_assume!(x != y);
        let expected = oracle_same_color_k_colorable(&g, k, x, y);
        let witness = coloring::exact_k_coloring(&g, k, &[(x, y)]);
        prop_assert_eq!(witness.is_some(), expected);
        if let Some(c) = witness {
            prop_assert!(c.is_proper(&g));
            prop_assert_eq!(c.color_of(x), c.color_of(y));
        }
    }

    /// The chromatic number computed by the pruned engine equals the
    /// smallest k the oracle accepts.
    #[test]
    fn chromatic_number_matches_oracle(g in arbitrary_graph()) {
        let chromatic = coloring::chromatic_number(&g);
        prop_assert!(oracle_is_k_colorable(&g, chromatic));
        if chromatic > 0 {
            prop_assert!(!oracle_is_k_colorable(&g, chromatic - 1));
        }
    }

    /// Theorem 5 agreement at scale: the polynomial chordal algorithm and
    /// the exact engine answer identically on every non-adjacent pair of
    /// larger interval graphs, for three k values — and the prepared
    /// session answers like the one-shot entry point.
    #[test]
    fn chordal_incremental_matches_exact_on_larger_instances(g in arbitrary_interval_graph()) {
        let omega = chordal::chordal_clique_number(&g).unwrap();
        let session = ChordalIncremental::prepare(&g).unwrap();
        prop_assert_eq!(session.omega(), omega);
        let verts: Vec<VertexId> = g.vertices().collect();
        for k in [omega, omega + 1, omega + 2] {
            for (i, &a) in verts.iter().enumerate() {
                for &b in &verts[i + 1..] {
                    if g.has_edge(a, b) {
                        continue;
                    }
                    let fast = session.query(k, a, b).unwrap().is_coalescible();
                    let slow = incremental_exact(&g, k, a, b).is_coalescible();
                    prop_assert_eq!(fast, slow, "pair ({}, {}), k = {}", a, b, k);
                    let one_shot = chordal_incremental(&g, k, a, b).unwrap().is_coalescible();
                    prop_assert_eq!(one_shot, fast, "session/one-shot split on ({}, {})", a, b);
                }
            }
        }
    }
}
