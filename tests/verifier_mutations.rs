//! The verifier's acceptance suite: every seeded fault injector must be
//! flagged with its expected rule id, and the real experiment pipelines
//! must come back clean under the paranoid audit.
//!
//! The injectors live in `coalesce_verify::mutation`: each builds the
//! clean pipeline artifacts of a small hand-written program, corrupts
//! exactly one of them the way a real bug would, and runs the checker
//! suite on the affected boundary.  A verifier that misses its fault — or
//! one that cries wolf on the untouched pipelines — fails here.

use coalesce_bench::verify::verify_experiment;
use coalesce_bench::ExperimentId;
use coalesce_verify::mutation::{verify_clean_sample, Fault};
use coalesce_verify::VerifyLevel;

/// Every injected fault is detected, and under the rule id the fault
/// promises (co-firing secondary rules are fine; missing the primary one
/// is not).
#[test]
fn every_injected_fault_is_flagged_with_its_rule_id() {
    assert!(Fault::ALL.len() >= 10, "the harness promises 10+ injectors");
    for fault in Fault::ALL {
        let violations = fault.inject_and_verify();
        let expected = fault.expected_rule();
        assert!(
            violations.iter().any(|v| v.rule == expected),
            "{fault:?}: expected a `{expected}` violation, got {violations:#?}"
        );
    }
}

/// The clean sample pipeline produces zero violations at the paranoid
/// level — the flip side of the injector test: no false positives.
#[test]
fn clean_sample_pipeline_is_silent_at_paranoid() {
    let violations = verify_clean_sample();
    assert!(
        violations.is_empty(),
        "clean pipeline flagged: {violations:#?}"
    );
}

/// Each fault's expected rule id names a rule in the published catalog.
#[test]
fn expected_rules_are_catalogued() {
    for fault in Fault::ALL {
        let expected = fault.expected_rule();
        assert!(
            coalesce_verify::rules::CATALOG
                .iter()
                .any(|r| r.id == expected),
            "{fault:?} expects uncatalogued rule `{expected}`"
        );
    }
}

/// The real experiment pipelines are clean under the paranoid audit at
/// the pinned seed — the same invocation the CI job runs for E13.
#[test]
fn experiment_pipelines_verify_clean_at_paranoid_seed_42() {
    for id in [
        ExperimentId::E13,
        ExperimentId::E15,
        ExperimentId::E16,
        ExperimentId::E17,
    ] {
        let violations = verify_experiment(id, 42, VerifyLevel::Paranoid, 1);
        assert!(
            violations.is_empty(),
            "{}: paranoid audit flagged {} violation(s): {:#?}",
            id.as_str(),
            violations.len(),
            violations
        );
    }
}
