//! Workspace smoke tests: the cross-crate wiring the whole repository
//! depends on.  These intentionally exercise one fixed-seed path through
//! every layer (gen → ir → core → alloc → bench) so a broken manifest or
//! dependency edge fails loudly and immediately.

use coalesce_alloc::pipeline::{run_allocator, AllocatorKind};
use coalesce_bench::experiments::reductions;
use coalesce_bench::{run_experiment, ExperimentId};
use coalesce_gen::programs::{random_ssa_program, ProgramParams};

/// Every allocator configuration must produce a *valid* assignment (no two
/// interfering variables in the same register) on a fixed-seed program.
#[test]
fn every_allocator_kind_yields_a_valid_assignment_on_a_fixed_seed_program() {
    let params = ProgramParams {
        diamonds: 3,
        ops_per_block: 3,
        pressure: 5,
        phis_per_join: 2,
    };
    let f = random_ssa_program(&params, &mut coalesce_gen::rng(12345));
    for kind in AllocatorKind::all() {
        let report = run_allocator(&f, 4, kind);
        assert!(
            report.valid,
            "{} produced an invalid assignment on the fixed-seed program",
            kind
        );
        assert!(report.registers_used <= 4, "{} overused registers", kind);
    }
}

/// E1's paper invariant (Theorem 2): the minimum multiway cut equals the
/// uncoalesced count of the *exact* aggressive coalescing, pinned on three
/// fixed seeds.
#[test]
fn e1_min_multiway_cut_equals_exact_aggressive_uncoalesced_on_three_seeds() {
    for row in reductions::e1_rows(0, 3) {
        assert_eq!(
            row.min_cut, row.exact_uncoalesced,
            "seed {}: Theorem 2 equivalence violated",
            row.seed
        );
        // The heuristic can only do worse than (or equal to) the optimum.
        assert!(row.heuristic_uncoalesced >= row.exact_uncoalesced);
    }
}

/// The experiment reports serialize deterministically — the property the
/// `run-experiments --json` perf artifacts rely on.
#[test]
fn experiment_reports_serialize_deterministically() {
    for id in [ExperimentId::E1, ExperimentId::E3, ExperimentId::E6] {
        let a = run_experiment(id, 0).to_json().to_pretty_string();
        let b = run_experiment(id, 0).to_json().to_pretty_string();
        assert_eq!(a, b, "{id} report must be byte-identical across runs");
    }
}
